"""The zero-copy process-pool prover data plane.

What must hold, on every path:

* transcripts byte-identical to the sequential sharded coordinator —
  in process mode, through the thread fallback, and inline-degraded;
* a SIGKILLed worker process costs a pool rebuild and a re-run of only
  never-completed tasks, never a transcript byte;
* no ``/dev/shm`` segment outlives its prover: clean shutdown, worker
  death, coordinator SIGKILL (the resource-tracker backstop), and the
  service closing a query must all end with zero ``reproshm_*`` entries
  (an autouse fixture sweeps before/after every test here).
"""

from __future__ import annotations

import glob
import os
import random
import signal
import subprocess
import sys
import time
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor

import pytest

from repro.comm.channel import Channel
from repro.core.base import pow2_dimension
from repro.core.f2 import F2Verifier, run_f2
from repro.distributed.sharded import DistributedF2Prover
from repro.field.modular import DEFAULT_FIELD as F
from repro.field.vectorized import get_backend
from repro.service.pool import (
    POOL_MODE_ENV_VAR,
    PoolConfigError,
    PooledDistributedF2Prover,
    ProcessPooledDistributedF2Prover,
    make_pooled_prover,
    resolve_pool_mode,
)
from repro.service.shm import (
    SEGMENT_PREFIX,
    SharedMemoryError,
    SharedShardStore,
)
from repro.streams.generators import uniform_frequency_stream

HAVE_DEV_SHM = sys.platform == "linux" and os.path.isdir("/dev/shm")


def _segments() -> set:
    return set(glob.glob("/dev/shm/%s*" % SEGMENT_PREFIX))


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this file must leave /dev/shm as it found it."""
    before = _segments() if HAVE_DEV_SHM else set()
    yield
    if HAVE_DEV_SHM:
        leaked = _segments() - before
        assert not leaked, "leaked shared-memory segments: %s" % sorted(
            leaked
        )


def _updates(u, seed, max_frequency=9):
    stream = uniform_frequency_stream(u, max_frequency=max_frequency,
                                      rng=random.Random(seed))
    return list(stream.updates())


def _reference(u, updates, point, backend=None, workers=8):
    prover = DistributedF2Prover(F, u, num_workers=workers, backend=backend)
    prover.process_stream(updates)
    verifier = F2Verifier(F, u, point=point)
    verifier.process_stream(updates)
    channel = Channel()
    result = run_f2(prover, verifier, channel)
    assert result.accepted
    return result, channel.transcript.messages


def _drive(prover, u, updates, point):
    verifier = F2Verifier(F, u, point=point)
    verifier.process_stream(updates)
    channel = Channel()
    result = run_f2(prover, verifier, channel)
    return result, channel.transcript.messages


# -- transcript equivalence ----------------------------------------------------


@pytest.mark.parametrize("backend_name", ["vectorized", "scalar"])
def test_process_prover_transcripts_byte_identical(backend_name):
    backend = get_backend(F, backend_name)
    if backend_name == "vectorized" and not getattr(
        backend, "vectorized", False
    ):
        pytest.skip("numpy not installed")
    u = 1 << 9
    updates = _updates(u, seed=31)
    point = F.rand_vector(random.Random(32), pow2_dimension(u))
    want, want_messages = _reference(u, updates, point, backend=backend)

    with ProcessPooledDistributedF2Prover(
        F, u, num_workers=8, backend=backend
    ) as prover:
        prover.process_stream(updates)
        assert prover.max_worker_keys == (1 << 9) // 8
        got, got_messages = _drive(prover, u, updates, point)
        assert prover.effective_mode == "process"

    assert got.accepted and got.value == want.value
    assert got_messages == want_messages


def test_single_update_ingest_and_true_answer():
    with ProcessPooledDistributedF2Prover(F, 1 << 6, num_workers=4) as p:
        for i, delta in [(0, 3), (63, -2), (17, 5), (17, 1)]:
            p.process(i, delta)
        assert p.true_answer() == 3 * 3 + 2 * 2 + 6 * 6
        with pytest.raises(ValueError):
            p.process(1 << 6, 1)
        with pytest.raises(ValueError):
            p.process_stream([(-1, 1)])


def test_repeated_proofs_reuse_one_segment():
    """begin_proof resets cleanly: two proofs over evolving data, one
    shm segment, transcripts matching fresh sequential references."""
    u = 1 << 8
    first = _updates(u, seed=41)
    second = [(k, 2) for k, _ in _updates(u, seed=42)[:40]]
    point = F.rand_vector(random.Random(43), pow2_dimension(u))
    with ProcessPooledDistributedF2Prover(F, u, num_workers=4) as prover:
        prover.process_stream(first)
        _, messages_1 = _drive(prover, u, first, point)
        prover.process_stream(second)
        _, messages_2 = _drive(prover, u, first + second, point)
    _, want_1 = _reference(u, first, point, workers=4)
    _, want_2 = _reference(u, first + second, point, workers=4)
    assert messages_1 == want_1
    assert messages_2 == want_2


# -- the shared-memory store ---------------------------------------------------


def test_shard_store_roundtrip_and_layout():
    with SharedShardStore(4, 8) as store:
        for shard in range(4):
            freq = store.freq_array(shard)
            freq[0] = -5 + shard
            freq[7] = 1000 + shard
            store.write_level(shard, 0, [shard * 10 + c for c in range(8)])
            store.write_level(shard, 3, [7 - shard])
        for shard in range(4):
            assert store.read_freq(shard)[0] == -5 + shard
            assert store.read_freq(shard)[7] == 1000 + shard
            assert store.read_level(shard, 0) == [
                shard * 10 + c for c in range(8)
            ]
            assert store.residual(shard) == 7 - shard
        with pytest.raises(ValueError):
            store.level_array(0, 4)  # only log2(8)=3 fold levels exist
        with pytest.raises(ValueError):
            store.write_level(0, 1, [1, 2, 3])  # level 1 holds 4 words


def test_shard_store_rejects_bad_shapes():
    with pytest.raises(ValueError):
        SharedShardStore(3, 8)
    with pytest.raises(ValueError):
        SharedShardStore(4, 6)
    with pytest.raises(ValueError):
        SharedShardStore(4, 1)


def test_shard_store_close_is_idempotent_and_unlinks():
    store = SharedShardStore(2, 4)
    name = store.name
    store.close()
    store.close()
    with pytest.raises(SharedMemoryError):
        SharedShardStore(2, 4, name=name, create=False)


def test_prover_shutdown_is_idempotent():
    prover = ProcessPooledDistributedF2Prover(F, 1 << 6, num_workers=4)
    name = prover.store.name
    prover.shutdown()
    prover.shutdown()
    if HAVE_DEV_SHM:
        assert not os.path.exists("/dev/shm/" + name)


# -- fault paths ---------------------------------------------------------------


def test_worker_sigkill_mid_proof_recovers_byte_identical():
    u = 1 << 9
    updates = _updates(u, seed=51)
    point = F.rand_vector(random.Random(52), pow2_dimension(u))
    want, want_messages = _reference(u, updates, point)

    with ProcessPooledDistributedF2Prover(F, u, num_workers=8) as prover:
        prover.warm_up(delay=0.01)
        prover.process_stream(updates)
        verifier = F2Verifier(F, u, point=point)
        verifier.process_stream(updates)
        channel = Channel()

        # Shim the per-round entry point so round 2 SIGKILLs a live
        # pool worker mid-proof: the next map step sees
        # BrokenProcessPool and rides the recovery machinery.
        state = {"round": 0}
        real_round_message = prover.round_message

        def killing_round_message():
            if state["round"] == 2 and prover._executor is not None:
                victims = [
                    p.pid for p in prover._executor._processes.values()
                ]
                assert victims, "pool has no live workers to kill"
                os.kill(victims[0], signal.SIGKILL)
            state["round"] += 1
            return real_round_message()

        prover.round_message = killing_round_message
        got = run_f2(prover, verifier, channel)

        assert state["round"] == prover.d
        assert prover.pool_failures >= 1
        assert prover.effective_mode == "process"  # rebuilt, not degraded

    assert got.accepted and got.value == want.value
    assert channel.transcript.messages == want_messages


def test_fallback_ladder_process_to_thread_to_inline():
    """With an executor factory that always breaks, the prover walks
    process -> thread -> inline and still proves byte-identically."""
    u = 1 << 8
    updates = _updates(u, seed=61)
    point = F.rand_vector(random.Random(62), pow2_dimension(u))
    want, want_messages = _reference(u, updates, point)

    state = {"made": 0}

    class _AlwaysBroken:
        def submit(self, fn, *args):
            raise BrokenExecutor("injected pool death")

        def shutdown(self, wait=True):
            pass

    def factory():
        state["made"] += 1
        return _AlwaysBroken()

    with ProcessPooledDistributedF2Prover(
        F, u, num_workers=8, executor_factory=factory
    ) as prover:
        prover.process_stream(updates)
        got, got_messages = _drive(prover, u, updates, point)
        assert prover.effective_mode == "inline"
        # process mode burns MAX_POOL_RESTARTS rebuilds, thread mode the
        # same again, plus the two mode-switch failures themselves.
        assert prover.pool_failures >= 2 * prover.MAX_POOL_RESTARTS + 2
        made_when_degraded = state["made"]
        prover.begin_proof()  # further work stays inline: no new pools
        assert state["made"] == made_when_degraded

    assert got.accepted and got.value == want.value
    assert got_messages == want_messages


def test_thread_fallback_produces_identical_transcript():
    """One rung of the ladder in isolation: force _pool_kind to thread
    (as repeated process-pool death would) and prove over the same shm
    tables with threads."""
    u = 1 << 8
    updates = _updates(u, seed=71)
    point = F.rand_vector(random.Random(72), pow2_dimension(u))
    want, want_messages = _reference(u, updates, point)

    with ProcessPooledDistributedF2Prover(F, u, num_workers=8) as prover:
        prover._pool_kind = "thread"
        prover.process_stream(updates)
        got, got_messages = _drive(prover, u, updates, point)
        assert prover.effective_mode == "thread"
        assert isinstance(prover._executor, ThreadPoolExecutor)

    assert got.accepted and got.value == want.value
    assert got_messages == want_messages


@pytest.mark.skipif(not HAVE_DEV_SHM, reason="needs /dev/shm")
def test_coordinator_sigkill_leaves_no_segment(tmp_path):
    """SIGKILL the *owning* process: the stdlib resource tracker is the
    backstop that unlinks the segment when the owner never could."""
    script = tmp_path / "owner.py"
    script.write_text(
        "import time\n"
        "from repro.service.shm import SharedShardStore\n"
        "store = SharedShardStore(4, 64)\n"
        "print(store.name, flush=True)\n"
        "time.sleep(60)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.path.dirname(__file__), os.pardir,
                                   "src"),
                      env.get("PYTHONPATH", "")])
    )
    proc = subprocess.Popen(
        [sys.executable, str(script)], stdout=subprocess.PIPE, text=True,
        env=env,
    )
    try:
        name = proc.stdout.readline().strip()
        assert name.startswith(SEGMENT_PREFIX)
        assert os.path.exists("/dev/shm/" + name)
        proc.kill()
        proc.wait()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    deadline = time.monotonic() + 10.0
    while os.path.exists("/dev/shm/" + name):
        assert time.monotonic() < deadline, (
            "resource tracker never unlinked %s" % name
        )
        time.sleep(0.05)


# -- mode selection ------------------------------------------------------------


def test_resolve_pool_mode_env_and_validation(monkeypatch):
    monkeypatch.delenv(POOL_MODE_ENV_VAR, raising=False)
    assert resolve_pool_mode("thread") == "thread"
    assert resolve_pool_mode("process") == "process"
    assert resolve_pool_mode("inline") == "inline"
    monkeypatch.setenv(POOL_MODE_ENV_VAR, "process")
    assert resolve_pool_mode() == "process"
    monkeypatch.setenv(POOL_MODE_ENV_VAR, "  THREAD ")
    assert resolve_pool_mode() == "thread"
    monkeypatch.setenv(POOL_MODE_ENV_VAR, "fork-bomb")
    with pytest.raises(PoolConfigError):
        resolve_pool_mode()
    monkeypatch.delenv(POOL_MODE_ENV_VAR, raising=False)
    # auto: vectorized backends want threads (GIL-releasing kernels);
    # a scalar backend wants processes once there is more than one core.
    assert resolve_pool_mode(
        "auto", backend=get_backend(F, "vectorized")
    ) in ("thread", "process")
    scalar_auto = resolve_pool_mode("auto", backend=get_backend(F, "scalar"))
    assert scalar_auto == (
        "process" if (os.cpu_count() or 1) >= 2 else "thread"
    )


def test_make_pooled_prover_dispatches_by_mode():
    inline = make_pooled_prover(F, 1 << 6, mode="inline")
    assert type(inline) is DistributedF2Prover
    inline.shutdown()  # inline shares the pooled lifecycle surface
    with make_pooled_prover(F, 1 << 6, mode="thread") as thread_prover:
        assert type(thread_prover) is PooledDistributedF2Prover
    with make_pooled_prover(F, 1 << 6, mode="process") as process_prover:
        assert type(process_prover) is ProcessPooledDistributedF2Prover
    with pytest.raises(PoolConfigError):
        make_pooled_prover(F, 1 << 6, mode="forkbomb")


def test_process_pool_config_validation():
    with pytest.raises(PoolConfigError):
        ProcessPooledDistributedF2Prover(F, 1 << 6, num_workers=4,
                                         max_procs=0)
    with pytest.raises(PoolConfigError):
        ProcessPooledDistributedF2Prover(F, 1 << 6, num_workers=4,
                                         max_procs=5)


# -- the service, end to end ---------------------------------------------------


def test_service_f2_query_in_process_mode(monkeypatch):
    """A worker-pool F2 query over the real wire with
    REPRO_POOL_MODE=process: the router builds a process prover, the
    verifier accepts, and closing the query releases the segment while
    the server keeps running."""
    from repro.service import ProverServer, ServiceClient, f2

    monkeypatch.setenv(POOL_MODE_ENV_VAR, "process")
    u = 1 << 8
    updates = _updates(u, seed=81)
    before = _segments() if HAVE_DEV_SHM else set()
    server = ProverServer(F)
    handle = server.serve_in_thread()
    try:
        host, port = handle.address
        with ServiceClient(host, port, F, u, dataset_id=77) as client:
            client.provision(("f2",), 2)
            client.send_updates(updates)
            plain = client.query(f2())[0]
            pooled = client.query(f2(workers=4))[0]
        assert plain.result.accepted and pooled.result.accepted
        assert plain.result.value == pooled.result.value
        if HAVE_DEV_SHM:
            # The query (and session) is closed: its segment is gone
            # even though the server is still up.
            assert _segments() - before == set()
    finally:
        handle.stop()
