"""Cross-cutting edge cases: degenerate sizes, extreme values, boundary
queries, and protocol state reuse."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    F2Prover,
    F2Verifier,
    build_reporting_session,
    predecessor_query,
    range_sum_protocol,
    run_f2,
    self_join_size_protocol,
    subvector_protocol,
    successor_query,
)
from repro.field.modular import DEFAULT_FIELD, PrimeField
from repro.streams.model import Stream

F = DEFAULT_FIELD


def test_f2_value_wraps_modulo_p_as_documented():
    """When the true F2 exceeds p, the protocol verifies F2 mod p — the
    documented behaviour; choose a bigger field to avoid it."""
    small = PrimeField(101)
    stream = Stream(4, [(0, 15)])  # F2 = 225 = 2*101 + 23
    result = self_join_size_protocol(stream, small, rng=random.Random(1))
    assert result.accepted
    assert result.value == 225 % 101


def test_f2_huge_frequency_single_key():
    stream = Stream(16, [(7, 10**8)])
    result = self_join_size_protocol(stream, F, rng=random.Random(2))
    assert result.accepted
    assert result.value == 10**16


def test_f2_all_keys_touched():
    u = 128
    stream = Stream(u, [(i, 1) for i in range(u)])
    result = self_join_size_protocol(stream, F, rng=random.Random(3))
    assert result.accepted
    assert result.value == u


def test_f2_interleaved_insert_delete_storm():
    rng = random.Random(4)
    updates = []
    for _ in range(200):
        key = rng.randrange(32)
        updates.append((key, 1))
        updates.append((key, -1))
    stream = Stream(32, updates)
    result = self_join_size_protocol(stream, F, rng=random.Random(5))
    assert result.accepted
    assert result.value == 0


def test_subvector_universe_two():
    stream = Stream(2, [(0, 3), (1, 4)])
    result = subvector_protocol(stream, 0, 1, F, rng=random.Random(6))
    assert result.accepted
    assert result.value.as_dict() == {0: 3, 1: 4}


def test_subvector_boundary_leaves():
    u = 64
    stream = Stream(u, [(0, 1), (u - 1, 2)])
    left = subvector_protocol(stream, 0, 0, F, rng=random.Random(7))
    right = subvector_protocol(stream, u - 1, u - 1, F,
                               rng=random.Random(8))
    assert left.accepted and left.value.as_dict() == {0: 1}
    assert right.accepted and right.value.as_dict() == {u - 1: 2}


def test_subvector_query_in_padding_region():
    """u = 100 pads to 128; queries may touch the padded tail and see
    only zeros there."""
    stream = Stream(100, [(99, 7)])
    result = subvector_protocol(stream, 90, 99, F, rng=random.Random(9))
    assert result.accepted
    assert result.value.as_dict() == {99: 7}


def test_range_sum_negative_values():
    stream = Stream(32, [(3, -10), (5, 4)])
    result = range_sum_protocol(stream, 0, 15, F, rng=random.Random(10))
    assert result.accepted
    assert result.value == (-6) % F.p


def test_predecessor_of_zero():
    stream = Stream.from_items(32, [0, 9])
    prover, verifier = build_reporting_session(stream, F,
                                               rng=random.Random(11))
    result = predecessor_query(prover, verifier, 0)
    assert result.accepted and result.value == 0


def test_successor_of_last_key():
    u = 32
    stream = Stream.from_items(u, [u - 1])
    prover, verifier = build_reporting_session(stream, F,
                                               rng=random.Random(12))
    result = successor_query(prover, verifier, u - 1)
    assert result.accepted and result.value == u - 1


def test_prover_reusable_across_proof_attempts():
    """begin_proof resets state: running the proof twice from the same
    prover yields identical messages."""
    stream = Stream.from_items(32, [5, 5, 9])
    verifier1 = F2Verifier(F, 32, rng=random.Random(13))
    verifier2 = F2Verifier(F, 32, rng=random.Random(14))
    prover = F2Prover(F, 32)
    for i, d in stream.updates():
        verifier1.process(i, d)
        verifier2.process(i, d)
        prover.process(i, d)
    r1 = run_f2(prover, verifier1)
    r2 = run_f2(prover, verifier2)
    assert r1.accepted and r2.accepted
    assert r1.value == r2.value


def test_protocols_usable_with_custom_prime():
    bertrand = PrimeField(131)  # a small non-Mersenne prime
    stream = Stream(64, [(9, 2)])
    result = self_join_size_protocol(stream, bertrand,
                                     rng=random.Random(15))
    assert result.accepted
    assert result.value == 4


def test_verification_result_reason_only_on_rejection():
    stream = Stream.from_items(16, [3])
    good = self_join_size_protocol(stream, F, rng=random.Random(16))
    assert good.reason is None

    verifier = F2Verifier(F, 16, rng=random.Random(17))
    prover = F2Prover(F, 32)
    bad = run_f2(prover, verifier)
    assert not bad.accepted and bad.reason


def test_updates_after_protocol_would_need_fresh_randomness():
    """State keeps accepting updates after a proof (the stream goes on),
    but a verified query then needs a fresh session — document by test."""
    stream = Stream.from_items(16, [3])
    verifier = F2Verifier(F, 16, rng=random.Random(18))
    prover = F2Prover(F, 16)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)
    first = run_f2(prover, verifier)
    assert first.accepted and first.value == 1
    # More stream arrives.
    verifier.process(5, 2)
    prover.process(5, 2)
    second = run_f2(prover, verifier)
    assert second.accepted and second.value == 1 + 4
