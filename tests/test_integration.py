"""Cross-module integration tests: the end-to-end scenarios of Section 1.

These mirror the motivating key-value-store example: a data owner uploads
data to an untrusted cloud while keeping O(log u) words, then verifies
gets, range scans, ordered navigation, aggregates and statistics.
"""

from __future__ import annotations

import random

import pytest

from repro.comm.channel import Channel
from repro.core import (
    build_reporting_session,
    dictionary_get,
    f0_protocol,
    heavy_hitters_protocol,
    index_query,
    predecessor_query,
    range_query,
    range_sum_protocol,
    self_join_size_protocol,
    successor_query,
)
from repro.field.modular import DEFAULT_FIELD
from repro.field.primes import MERSENNE_127
from repro.field.modular import PrimeField
from repro.streams.kvstore import OutsourcedKVStore
from repro.streams.generators import key_value_pairs, zipf_stream
from repro.streams.model import Stream

F = DEFAULT_FIELD


@pytest.fixture(scope="module")
def store():
    s = OutsourcedKVStore(256)
    s.put_many(key_value_pairs(256, 60, rng=random.Random(1)))
    return s


def test_kvstore_get_verified(store):
    keys = sorted(k for k, _ in store.range_scan(0, 255))
    for q, seed in [(keys[0], 2), (keys[-1], 3)]:
        prover, verifier = build_reporting_session(store.stream, F,
                                                   rng=random.Random(seed))
        result = dictionary_get(prover, verifier, q)
        assert result.accepted
        assert result.value.found
        assert result.value.value == store.get(q)


def test_kvstore_get_missing_verified(store):
    absent = next(k for k in range(256) if store.get(k) is None)
    prover, verifier = build_reporting_session(store.stream, F,
                                               rng=random.Random(4))
    result = dictionary_get(prover, verifier, absent)
    assert result.accepted and not result.value.found


def test_kvstore_navigation_verified(store):
    q = 128
    prover, verifier = build_reporting_session(store.stream, F,
                                               rng=random.Random(5))
    pred = predecessor_query(prover, verifier, q)
    assert pred.accepted and pred.value == store.predecessor_key(q)

    prover, verifier = build_reporting_session(store.stream, F,
                                               rng=random.Random(6))
    succ = successor_query(prover, verifier, q)
    assert succ.accepted and succ.value == store.successor_key(q)


def test_kvstore_range_scan_verified(store):
    lo, hi = 50, 150
    prover, verifier = build_reporting_session(store.stream, F,
                                               rng=random.Random(7))
    result = range_query(prover, verifier, lo, hi)
    assert result.accepted
    decoded = sorted((k, v - 1) for k, v in result.value.entries)
    assert decoded == store.range_scan(lo, hi)


def test_kvstore_range_value_sum_verified(store):
    lo, hi = 0, 255
    result = range_sum_protocol(store.stream, lo, hi, F,
                                rng=random.Random(8))
    assert result.accepted
    # Stream frequencies are value+1, so subtract the key count.
    num_keys = len(store.range_scan(lo, hi))
    assert result.value - num_keys == store.range_value_sum(lo, hi)


def test_network_monitoring_scenario():
    """Zipf traffic: verified F2 (a join-size style statistic), distinct
    sources (F0) and top talkers (heavy hitters) over one stream."""
    traffic = zipf_stream(512, 4000, skew=1.2, rng=random.Random(9))

    f2 = self_join_size_protocol(traffic, F, rng=random.Random(10))
    assert f2.accepted and f2.value == traffic.self_join_size() % F.p

    f0 = f0_protocol(traffic, F, rng=random.Random(11))
    assert f0.accepted and f0.value == traffic.distinct_count()

    hh = heavy_hitters_protocol(traffic, 0.03, F, rng=random.Random(12))
    assert hh.accepted and hh.value == traffic.heavy_hitters(0.03)


def test_verifier_space_is_logarithmic_end_to_end():
    """For u = 2^16 the verifier's state stays well under 100 words while
    the data is 64K entries: the headline exponential gap."""
    u = 1 << 16
    stream = Stream(u, [(i, 1) for i in range(0, u, 997)])
    result = self_join_size_protocol(stream, F, rng=random.Random(13))
    assert result.accepted
    assert result.verifier_space_words < 100
    assert result.transcript.total_words < 100


def test_bigger_field_reduces_soundness_error():
    """Section 5: p = 2^127 - 1 drops the error below 1e-35; protocols run
    unchanged over the bigger field."""
    big = PrimeField(MERSENNE_127, check_prime=False)
    stream = Stream.from_items(64, [1, 1, 2, 63])
    result = self_join_size_protocol(stream, big, rng=random.Random(14))
    assert result.accepted
    assert result.value == stream.self_join_size()
    d = 6
    assert 2 * d * 2 / big.p < 1e-35


def test_index_over_bit_vector_classic_problem():
    """INDEX as defined in Section 1.1 (bit stream + late query): linear
    lower bound in plain streaming, O(log u) here."""
    u = 1 << 10
    rng = random.Random(15)
    bits = [rng.randint(0, 1) for _ in range(u)]
    stream = Stream.from_items(u, [i for i, b in enumerate(bits) if b])
    q = rng.randrange(u)
    prover, verifier = build_reporting_session(stream, F,
                                               rng=random.Random(16))
    result = index_query(prover, verifier, q)
    assert result.accepted
    assert result.value == bits[q]
    assert result.verifier_space_words < 8 * 10 + 10


def test_transcript_channel_integration():
    """One channel can carry a claim plus a protocol run and the word
    accounting remains exact."""
    stream = Stream.from_items(32, [5, 9])
    prover, verifier = build_reporting_session(stream, F,
                                               rng=random.Random(17))
    ch = Channel()
    result = predecessor_query(prover, verifier, 20, ch)
    assert result.accepted and result.value == 9
    total = sum(m.payload_words for m in ch.transcript.messages)
    assert total == ch.transcript.total_words
