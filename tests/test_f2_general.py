"""Tests for the general-ℓ F2 protocol (Section 3.1 tradeoff)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.comm.channel import Channel, flip_word
from repro.core.f2 import self_join_size_protocol
from repro.core.f2_general import (
    GeneralF2Prover,
    GeneralF2Verifier,
    general_f2_protocol,
    run_general_f2,
)
from repro.core.single_round import single_round_f2_protocol
from repro.field.modular import DEFAULT_FIELD
from repro.streams.generators import uniform_frequency_stream
from repro.streams.model import Stream

F = DEFAULT_FIELD


@pytest.mark.parametrize("ell", [2, 3, 4, 8])
def test_completeness_across_bases(ell):
    stream = uniform_frequency_stream(64, max_frequency=7,
                                      rng=random.Random(ell))
    result = general_f2_protocol(stream, ell, F, rng=random.Random(10 + ell))
    assert result.accepted
    assert result.value == stream.self_join_size() % F.p


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=26),
                          st.integers(min_value=-6, max_value=6)),
                max_size=25),
       st.integers(min_value=2, max_value=5))
def test_completeness_random(updates, ell):
    stream = Stream(27, updates)
    result = general_f2_protocol(stream, ell, F, rng=random.Random(0))
    assert result.accepted
    assert result.value == stream.self_join_size() % F.p


def test_ell2_matches_main_protocol():
    stream = uniform_frequency_stream(128, max_frequency=9,
                                      rng=random.Random(1))
    general = general_f2_protocol(stream, 2, F, rng=random.Random(2))
    main = self_join_size_protocol(stream, F, rng=random.Random(3))
    assert general.accepted and main.accepted
    assert general.value == main.value
    assert general.transcript.rounds == main.transcript.rounds
    assert general.transcript.prover_words == main.transcript.prover_words


def test_large_ell_recovers_single_round_costs():
    """ℓ = √u, d = 2 is (up to the extra round) the [6] baseline shape."""
    u = 256
    stream = uniform_frequency_stream(u, max_frequency=5,
                                      rng=random.Random(4))
    general = general_f2_protocol(stream, 16, F, rng=random.Random(5))
    single = single_round_f2_protocol(stream, F, rng=random.Random(6))
    assert general.accepted and single.accepted
    assert general.value == single.value
    assert general.transcript.rounds == 2
    # Message sizes match: 2ℓ-1 words with ℓ = 16.
    assert all(
        m.payload_words == 31
        for m in general.transcript.messages_from("prover")
    )


def test_rounds_shrink_and_messages_grow_with_ell():
    u = 4096
    stream = Stream.from_items(u, [1, 2, 3])
    stats = {}
    for ell in (2, 4, 8):
        result = general_f2_protocol(stream, ell, F,
                                     rng=random.Random(7))
        assert result.accepted
        stats[ell] = (result.transcript.rounds,
                      result.transcript.prover_words,
                      result.verifier_space_words)
    rounds = {ell: s[0] for ell, s in stats.items()}
    assert rounds[2] > rounds[4] > rounds[8]
    assert rounds[2] == 12 and rounds[4] == 6 and rounds[8] == 4
    words_per_round = {
        ell: stats[ell][1] / rounds[ell] for ell in stats
    }
    assert words_per_round[2] < words_per_round[4] < words_per_round[8]


def test_tampering_rejected():
    stream = uniform_frequency_stream(81, max_frequency=4,
                                      rng=random.Random(8))
    channel = Channel(tamper=flip_word(round_index=1, position=2))
    result = general_f2_protocol(stream, 3, F, rng=random.Random(9),
                                 channel=channel)
    assert not result.accepted


def test_lying_prover_rejected():
    u = 64
    stream = Stream.from_items(u, [5, 9, 9])
    verifier = GeneralF2Verifier(F, u, 4, rng=random.Random(10))
    prover = GeneralF2Prover(F, u, 4)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)
    prover.freq[5] += 1
    result = run_general_f2(prover, verifier)
    assert not result.accepted


def test_parameter_validation():
    with pytest.raises(ValueError):
        GeneralF2Prover(F, 8, 1)
    with pytest.raises(ValueError):
        GeneralF2Verifier(F, 8, 1, rng=random.Random(0))


def test_parameter_mismatch_rejected():
    verifier = GeneralF2Verifier(F, 64, 4, rng=random.Random(11))
    prover = GeneralF2Prover(F, 64, 2)
    assert not run_general_f2(prover, verifier).accepted


def test_non_power_universe_padded():
    stream = Stream.from_items(10, [9, 9])
    result = general_f2_protocol(stream, 3, F, rng=random.Random(12))
    assert result.accepted
    assert result.value == 4
