"""Tests for repro.comm.wire (byte-level message framing)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.comm.wire import (
    WireFormatError,
    decode_words,
    encode_words,
    frame_bytes,
    transcript_wire_bytes,
    word_width,
)
from repro.field.modular import DEFAULT_FIELD, PrimeField
from repro.field.primes import MERSENNE_127

F = DEFAULT_FIELD
BIG = PrimeField(MERSENNE_127, check_prime=False)

words_strategy = st.lists(
    st.integers(min_value=0, max_value=F.p - 1), max_size=20
)


def test_word_width_by_field():
    assert word_width(F) == 8
    assert word_width(BIG) == 16
    assert word_width(PrimeField(101)) == 1


@given(words_strategy)
def test_roundtrip(words):
    frame = encode_words(F, words)
    assert decode_words(F, frame) == words
    assert len(frame) == frame_bytes(F, len(words))


@given(st.lists(st.integers(min_value=-(10**20), max_value=10**20),
                max_size=10))
def test_encoding_canonicalises(words):
    frame = encode_words(F, words)
    assert decode_words(F, frame) == [w % F.p for w in words]


def test_empty_frame():
    frame = encode_words(F, [])
    assert decode_words(F, frame) == []
    assert len(frame) == 4


def test_big_field_roundtrip():
    words = [0, BIG.p - 1, 12345]
    assert decode_words(BIG, encode_words(BIG, words)) == words


def test_truncated_frame_rejected():
    frame = encode_words(F, [1, 2, 3])
    with pytest.raises(WireFormatError):
        decode_words(F, frame[:-1])
    with pytest.raises(WireFormatError):
        decode_words(F, frame[:2])


def test_padded_frame_rejected():
    frame = encode_words(F, [1]) + b"\x00"
    with pytest.raises(WireFormatError):
        decode_words(F, frame)


def test_non_canonical_word_rejected():
    frame = bytearray(encode_words(F, [0]))
    frame[4:12] = F.p.to_bytes(8, "big")  # == p: not canonical
    with pytest.raises(WireFormatError):
        decode_words(F, bytes(frame))


def test_transcript_wire_bytes_matches_protocol_run():
    from repro.core.f2 import self_join_size_protocol
    from repro.streams.model import Stream

    stream = Stream.from_items(64, [3, 3, 9])
    result = self_join_size_protocol(stream, F, rng=random.Random(1))
    total = transcript_wire_bytes(F, result.transcript)
    # word payload + 4 bytes of framing per message.
    assert total == result.transcript.total_words * 8 + 4 * len(
        result.transcript
    )
