"""Tests for repro.comm.wire (byte-level message framing)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.comm.transcript import PROVER, VERIFIER, Message, Transcript
from repro.comm.wire import (
    TRANSCRIPT_MAGIC,
    WIRE_VERSION,
    WireFormatError,
    decode_message,
    decode_transcript,
    decode_words,
    encode_message,
    encode_transcript,
    encode_words,
    frame_bytes,
    transcript_wire_bytes,
    word_width,
)
from repro.field.modular import DEFAULT_FIELD, PrimeField
from repro.field.primes import MERSENNE_127

F = DEFAULT_FIELD
BIG = PrimeField(MERSENNE_127, check_prime=False)

words_strategy = st.lists(
    st.integers(min_value=0, max_value=F.p - 1), max_size=20
)


def test_word_width_by_field():
    assert word_width(F) == 8
    assert word_width(BIG) == 16
    assert word_width(PrimeField(101)) == 1


@given(words_strategy)
def test_roundtrip(words):
    frame = encode_words(F, words)
    assert decode_words(F, frame) == words
    assert len(frame) == frame_bytes(F, len(words))


@given(st.lists(st.integers(min_value=-(10**20), max_value=10**20),
                max_size=10))
def test_encoding_canonicalises(words):
    frame = encode_words(F, words)
    assert decode_words(F, frame) == [w % F.p for w in words]


def test_empty_frame():
    frame = encode_words(F, [])
    assert decode_words(F, frame) == []
    assert len(frame) == 4


def test_big_field_roundtrip():
    words = [0, BIG.p - 1, 12345]
    assert decode_words(BIG, encode_words(BIG, words)) == words


def test_truncated_frame_rejected():
    frame = encode_words(F, [1, 2, 3])
    with pytest.raises(WireFormatError):
        decode_words(F, frame[:-1])
    with pytest.raises(WireFormatError):
        decode_words(F, frame[:2])


def test_padded_frame_rejected():
    frame = encode_words(F, [1]) + b"\x00"
    with pytest.raises(WireFormatError):
        decode_words(F, frame)


def test_non_canonical_word_rejected():
    frame = bytearray(encode_words(F, [0]))
    frame[4:12] = F.p.to_bytes(8, "big")  # == p: not canonical
    with pytest.raises(WireFormatError):
        decode_words(F, bytes(frame))


# -- transcript rounds ---------------------------------------------------------

labels = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x10FFFF,
                           exclude_categories=("Cs",)),
    max_size=40,
)

messages_strategy = st.builds(
    Message,
    sender=st.sampled_from([PROVER, VERIFIER]),
    round_index=st.integers(min_value=0, max_value=(1 << 32) - 1),
    label=labels,
    payload=st.lists(
        st.integers(min_value=0, max_value=F.p - 1), max_size=8
    ).map(tuple),
)


@given(messages_strategy)
def test_message_roundtrip(message):
    blob = encode_message(F, message)
    decoded, end = decode_message(F, blob)
    assert decoded == message
    assert end == len(blob)


@given(st.lists(messages_strategy, max_size=6))
def test_transcript_roundtrip(msgs):
    transcript = Transcript(messages=list(msgs))
    blob = encode_transcript(F, transcript)
    decoded = decode_transcript(F, blob)
    assert decoded.messages == transcript.messages
    assert decoded.total_words == transcript.total_words
    assert decoded.rounds == transcript.rounds


@given(st.lists(messages_strategy, min_size=1, max_size=4),
       st.data())
def test_transcript_truncation_always_rejected(msgs, data):
    blob = encode_transcript(F, Transcript(messages=list(msgs)))
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(WireFormatError):
        decode_transcript(F, blob[:cut])


@given(st.lists(messages_strategy, max_size=4))
def test_transcript_trailing_garbage_rejected(msgs):
    blob = encode_transcript(F, Transcript(messages=list(msgs)))
    with pytest.raises(WireFormatError):
        decode_transcript(F, blob + b"\x00")


def test_transcript_header_validation():
    blob = encode_transcript(F, Transcript())
    assert blob[:4] == TRANSCRIPT_MAGIC
    with pytest.raises(WireFormatError):
        decode_transcript(F, b"XXXX" + blob[4:])
    bad_version = blob[:4] + bytes([WIRE_VERSION + 1]) + blob[5:]
    with pytest.raises(WireFormatError):
        decode_transcript(F, bad_version)
    # Word-width mismatch: a transcript captured over the 61-bit field
    # must not decode under the 127-bit one.
    with pytest.raises(WireFormatError):
        decode_transcript(BIG, blob)


def test_message_bad_sender_code_rejected():
    blob = encode_message(F, Message(PROVER, 0, "g1", (1, 2, 3)))
    with pytest.raises(WireFormatError):
        decode_message(F, b"\x00" + blob[1:])


def test_message_absurd_word_count_rejected():
    # Header + label declare themselves fine; the word count is damage.
    blob = bytearray(encode_message(F, Message(PROVER, 0, "", ())))
    blob[-4:] = (1 << 30).to_bytes(4, "big")
    with pytest.raises(WireFormatError):
        decode_message(F, bytes(blob))


def test_message_non_utf8_label_rejected():
    blob = bytearray(encode_message(F, Message(PROVER, 0, "ab", ())))
    blob[6:8] = b"\xff\xfe"
    with pytest.raises(WireFormatError):
        decode_message(F, bytes(blob))


def test_encode_message_validates_fields():
    with pytest.raises(WireFormatError):
        encode_message(F, Message(PROVER, 1 << 32, "g", ()))
    with pytest.raises(WireFormatError):
        encode_message(F, Message(PROVER, 0, "x" * 300, ()))


def test_protocol_transcript_roundtrips_and_costs_survive():
    """A real protocol run's transcript survives the wire byte-for-byte,
    including the (s, t) accounting read off the decoded copy."""
    from repro.core.f2 import self_join_size_protocol
    from repro.streams.model import Stream

    stream = Stream.from_items(256, [3, 3, 9, 200, 200, 200])
    result = self_join_size_protocol(stream, F, rng=random.Random(5))
    decoded = decode_transcript(F, encode_transcript(F, result.transcript))
    assert decoded.messages == result.transcript.messages
    assert decoded.prover_words == result.transcript.prover_words
    assert decoded.verifier_words == result.transcript.verifier_words
    assert transcript_wire_bytes(F, decoded) == transcript_wire_bytes(
        F, result.transcript
    )


def test_transcript_wire_bytes_matches_protocol_run():
    from repro.core.f2 import self_join_size_protocol
    from repro.streams.model import Stream

    stream = Stream.from_items(64, [3, 3, 9])
    result = self_join_size_protocol(stream, F, rng=random.Random(1))
    total = transcript_wire_bytes(F, result.transcript)
    # word payload + 4 bytes of framing per message.
    assert total == result.transcript.total_words * 8 + 4 * len(
        result.transcript
    )


# -- hostile length prefixes (robustness) --------------------------------------


def test_oversized_declared_word_count_rejected_before_allocation():
    """A damaged/hostile length prefix must die on the cap check, never
    reach the per-word loop (which would try to allocate its claim)."""
    from repro.comm.wire import MAX_MESSAGE_WORDS

    huge = (MAX_MESSAGE_WORDS + 1).to_bytes(4, "big")
    with pytest.raises(WireFormatError, match="cap"):
        decode_words(F, huge)
    # An unsigned parse of a "negative" 32-bit length is a huge count:
    # same check, same rejection.
    negative = (0xFFFFFFFF).to_bytes(4, "big")
    with pytest.raises(WireFormatError, match="cap"):
        decode_words(F, negative)


def test_decode_words_max_words_knob():
    frame = encode_words(F, [1, 2, 3, 4, 5])
    assert decode_words(F, frame, max_words=5) == [1, 2, 3, 4, 5]
    with pytest.raises(WireFormatError, match="cap"):
        decode_words(F, frame, max_words=4)
    # The knob can only tighten the global cap, never widen it.
    from repro.comm.wire import MAX_MESSAGE_WORDS

    huge = (MAX_MESSAGE_WORDS + 1).to_bytes(4, "big")
    with pytest.raises(WireFormatError, match="cap"):
        decode_words(F, huge, max_words=MAX_MESSAGE_WORDS * 16)


def test_transcript_message_count_guard_precedes_decode_loop():
    blob = bytearray(encode_transcript(F, Transcript()))
    blob[6:10] = (1 << 31).to_bytes(4, "big")
    with pytest.raises(WireFormatError, match="message count"):
        decode_transcript(F, bytes(blob))


def test_unpack_header_max_payload_knob():
    from repro.service import protocol as sp

    frame = sp.pack_frame(sp.T_UPDATES, 1, b"x" * 100)
    header = frame[: sp.HEADER_LEN]
    assert sp.unpack_header(header)[2] == 100
    assert sp.unpack_header(header, max_payload=100)[2] == 100
    with pytest.raises(sp.ServiceProtocolError):
        sp.unpack_header(header, max_payload=99)
    # The knob tightens MAX_PAYLOAD; it cannot widen it.
    huge = bytearray(header)
    huge[8:12] = (sp.MAX_PAYLOAD + 1).to_bytes(4, "big")
    with pytest.raises(sp.ServiceProtocolError):
        sp.unpack_header(bytes(huge), max_payload=sp.MAX_PAYLOAD * 4)
