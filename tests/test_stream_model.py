"""Tests for repro.streams.model (the Section 2 input model + oracles)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams.model import Stream, UniverseError

updates_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=31),
              st.integers(min_value=-20, max_value=20)),
    max_size=60,
)


def test_universe_validation():
    with pytest.raises(UniverseError):
        Stream(0)
    s = Stream(4)
    with pytest.raises(UniverseError):
        s.append(4, 1)
    with pytest.raises(UniverseError):
        s.append(-1, 1)


def test_from_items():
    s = Stream.from_items(8, [1, 1, 7])
    assert s.frequency_vector() == [0, 2, 0, 0, 0, 0, 0, 1]


def test_from_frequency_vector_roundtrip():
    freqs = [0, 3, 0, -2, 7]
    s = Stream.from_frequency_vector(freqs)
    assert s.u == 5
    assert s.frequency_vector() == freqs
    assert len(s) == 3  # one update per nonzero entry


@given(updates_strategy)
def test_frequency_vector_matches_sparse(updates):
    s = Stream(32, updates)
    dense = s.frequency_vector()
    sparse = s.sparse_frequencies()
    assert all(dense[i] == f for i, f in sparse.items())
    assert all(f != 0 for f in sparse.values())
    assert sum(1 for f in dense if f != 0) == len(sparse)


@given(updates_strategy)
def test_self_join_size_oracle(updates):
    s = Stream(32, updates)
    dense = s.frequency_vector()
    assert s.self_join_size() == sum(f * f for f in dense)


@given(updates_strategy, st.integers(min_value=1, max_value=4))
def test_frequency_moment_oracle(updates, k):
    s = Stream(32, updates)
    dense = s.frequency_vector()
    assert s.frequency_moment(k) == sum(f**k for f in dense)


def test_frequency_moment_rejects_negative_order():
    with pytest.raises(ValueError):
        Stream(4).frequency_moment(-1)


@given(updates_strategy, updates_strategy)
def test_inner_product_oracle(ua, ub):
    a = Stream(32, ua)
    b = Stream(32, ub)
    da, db = a.frequency_vector(), b.frequency_vector()
    assert a.inner_product(b) == sum(x * y for x, y in zip(da, db))
    assert a.inner_product(b) == b.inner_product(a)


def test_inner_product_universe_mismatch():
    with pytest.raises(UniverseError):
        Stream(4).inner_product(Stream(8))


@given(updates_strategy,
       st.tuples(st.integers(min_value=0, max_value=31),
                 st.integers(min_value=0, max_value=31)))
def test_range_sum_and_entries(updates, bounds):
    lo, hi = min(bounds), max(bounds)
    s = Stream(32, updates)
    dense = s.frequency_vector()
    assert s.range_sum(lo, hi) == sum(dense[lo : hi + 1])
    entries = s.range_entries(lo, hi)
    assert entries == [
        (i, dense[i]) for i in range(lo, hi + 1) if dense[i] != 0
    ]
    assert entries == sorted(entries)


def test_predecessor_successor():
    s = Stream.from_items(16, [2, 9, 9, 14])
    assert s.predecessor(9) == 9
    assert s.predecessor(8) == 2
    assert s.successor(10) == 14
    assert s.successor(9) == 9
    with pytest.raises(LookupError):
        s.predecessor(1)
    with pytest.raises(LookupError):
        s.successor(15)


def test_predecessor_ignores_cancelled_keys():
    s = Stream(16, [(5, 2), (5, -2), (3, 1)])
    assert s.predecessor(6) == 3


def test_heavy_hitters_oracle():
    s = Stream.from_items(8, [1] * 6 + [2] * 3 + [3])
    assert s.heavy_hitters(0.5) == {1: 6}
    assert s.heavy_hitters(0.3) == {1: 6, 2: 3}


def test_distinct_count_and_fmax():
    s = Stream(8, [(0, 2), (1, 5), (2, 1), (1, -5)])
    assert s.distinct_count() == 2
    assert s.max_frequency() == 2
    assert Stream(8).max_frequency() == 0


def test_inverse_distribution_point():
    s = Stream.from_items(8, [0, 1, 1, 2, 2, 3])
    assert s.inverse_distribution_point(1) == 2
    assert s.inverse_distribution_point(2) == 2
    assert s.inverse_distribution_point(3) == 0
    with pytest.raises(ValueError):
        s.inverse_distribution_point(0)


def test_stats():
    s = Stream(10, [(1, 3), (2, 4), (1, -3)])
    stats = s.stats()
    assert stats.universe_size == 10
    assert stats.num_updates == 3
    assert stats.num_nonzero == 1
    assert stats.total_mass == 4
    assert stats.density == pytest.approx(0.1)


def test_iteration_preserves_order():
    updates = [(3, 1), (1, 2), (3, -1)]
    s = Stream(4, updates)
    assert list(s) == updates
    assert list(s.updates()) == updates
