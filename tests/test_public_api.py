"""The public API surface: everything advertised in repro.__all__ exists,
and the README quick-start runs verbatim."""

from __future__ import annotations

import random

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), "missing export %s" % name


def test_version():
    assert repro.__version__


def test_readme_quickstart():
    stream = repro.Stream.from_items(8, [1, 3, 3, 5, 7, 7, 7])
    result = repro.self_join_size_protocol(
        stream, repro.DEFAULT_FIELD, rng=random.Random(42)
    )
    assert result.accepted and result.value == stream.self_join_size()


def test_default_field_constant():
    assert repro.DEFAULT_FIELD.p == repro.MERSENNE_61 == 2**61 - 1
    assert repro.MERSENNE_127 == 2**127 - 1


def test_subpackages_importable():
    import repro.adversary
    import repro.comm
    import repro.core
    import repro.experiments
    import repro.field
    import repro.gkr
    import repro.lde
    import repro.merkle
    import repro.streams

    for module in (
        repro.adversary,
        repro.comm,
        repro.core,
        repro.experiments,
        repro.field,
        repro.gkr,
        repro.lde,
        repro.merkle,
        repro.streams,
    ):
        assert module.__doc__


def test_verification_result_truthiness():
    stream = repro.Stream.from_items(8, [1])
    result = repro.self_join_size_protocol(
        stream, repro.DEFAULT_FIELD, rng=random.Random(0)
    )
    assert bool(result) is True
