"""Tests for the k-LARGEST protocol (Section 6.1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.k_largest import (
    KLargestProver,
    k_largest_protocol,
    k_largest_query,
)
from repro.core.subvector import TreeHashVerifier
from repro.field.modular import DEFAULT_FIELD
from repro.streams.model import Stream

F = DEFAULT_FIELD


def session(stream, seed=0):
    verifier = TreeHashVerifier(F, stream.u, rng=random.Random(seed))
    prover = KLargestProver(F, stream.u)
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process(i, delta)
    return prover, verifier


def kth_largest_oracle(keys, k):
    ranked = sorted(set(keys), reverse=True)
    return ranked[k - 1] if k <= len(ranked) else None


@given(st.sets(st.integers(min_value=0, max_value=63), min_size=1,
               max_size=20),
       st.integers(min_value=1, max_value=8))
def test_completeness_random(keys, k):
    stream = Stream.from_items(64, sorted(keys))
    prover, verifier = session(stream, seed=k)
    result = k_largest_query(prover, verifier, k)
    assert result.accepted
    assert result.value == kth_largest_oracle(keys, k)


def test_first_largest_is_max():
    stream = Stream.from_items(32, [5, 17, 29])
    prover, verifier = session(stream)
    result = k_largest_query(prover, verifier, 1)
    assert result.accepted and result.value == 29


def test_multiplicities_do_not_matter():
    """k-largest ranks distinct keys, not occurrences."""
    stream = Stream.from_items(32, [9, 9, 9, 4])
    prover, verifier = session(stream)
    result = k_largest_query(prover, verifier, 2)
    assert result.accepted and result.value == 4


def test_fewer_than_k_keys():
    stream = Stream.from_items(32, [3, 7])
    prover, verifier = session(stream)
    result = k_largest_query(prover, verifier, 5)
    assert result.accepted and result.value is None


def test_lying_claim_too_high_rejected():
    """Claiming a larger key than the truth: the claimed location holds no
    key (or the range holds fewer than k keys)."""
    stream = Stream.from_items(64, [10, 20, 30])
    prover, verifier = session(stream)
    prover.claim_kth_largest = lambda k: (1, 25)
    result = k_largest_query(prover, verifier, 2)
    assert not result.accepted


def test_lying_claim_too_low_rejected():
    """Claiming a smaller key: the suffix range exposes too many keys."""
    stream = Stream.from_items(64, [10, 20, 30])
    prover, verifier = session(stream)
    prover.claim_kth_largest = lambda k: (1, 10)
    result = k_largest_query(prover, verifier, 2)
    assert not result.accepted


def test_false_none_claim_rejected():
    stream = Stream.from_items(64, [10, 20, 30])
    prover, verifier = session(stream)
    prover.claim_kth_largest = lambda k: (0, 0)
    result = k_largest_query(prover, verifier, 2)
    assert not result.accepted


def test_cost_k_plus_log_u():
    u = 1 << 10
    keys = [1000 - i for i in range(5)]
    stream = Stream.from_items(u, keys)
    prover, verifier = session(stream)
    result = k_largest_query(prover, verifier, 3)
    assert result.accepted
    assert result.transcript.total_words <= 2 + 2 + 2 * 3 + 9 + 4 * 10


def test_k_validation():
    stream = Stream.from_items(8, [1])
    prover, verifier = session(stream)
    with pytest.raises(ValueError):
        k_largest_query(prover, verifier, 0)


def test_end_to_end_helper():
    stream = Stream.from_items(32, [4, 8, 15, 16, 23])
    result = k_largest_protocol(stream, 2, F, rng=random.Random(1))
    assert result.accepted and result.value == 16
