"""Chaos tests: the verified-query service under injected faults.

The acceptance bar is stronger than "it still works": because sum-check
transcripts are deterministic given the data and the verifier's
randomness, every recovery path — retry, reconnect, replay catch-up,
snapshot/restore, worker-pool rebuild — must reproduce the *byte
identical* transcript of an undisturbed run.  These tests drive a real
server and a real client through a :class:`ChaosProxy` under scheduled
connection drops, frame truncation/corruption, delays and stalls, and
compare ``encode_transcript`` bytes against a fault-free reference.

Soundness must survive too: structural transport damage is retried, but
a *cheating prover* behind the same faulty wire is still rejected — the
retry layer must never convert a semantic rejection into a retry.

``REPRO_CHAOS_SEED`` (default 0) offsets every seeded schedule so the CI
chaos leg can sweep a seed matrix over the same assertions.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.cheating_provers import ModifiedStreamF2Prover
from repro.comm.channel import Channel
from repro.comm.wire import encode_transcript
from repro.core.f2 import F2Verifier, run_f2
from repro.distributed.sharded import DistributedF2Prover
from repro.field.modular import DEFAULT_FIELD as F
from repro.service import protocol as sp
from repro.service import (
    ChaosProxy,
    FaultSchedule,
    NO_RETRY,
    PooledDistributedF2Prover,
    ProverServer,
    RetryPolicy,
    ServiceBusyError,
    ServiceClient,
    ServiceUnavailableError,
    f2,
    run_load,
)
from repro.service.faults import (
    Fault,
    KIND_CORRUPT,
    KIND_DELAY,
    KIND_DROP,
    KIND_STALL,
    KIND_TRUNCATE,
    SeededSchedule,
)
from repro.streams.generators import uniform_frequency_stream

#: Seed offset for the CI chaos matrix (three fixed seeds in the leg).
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: Tight backoff so injected outages cost milliseconds, not seconds.
FAST_RETRY = RetryPolicy(max_attempts=8, base_delay=0.005, max_delay=0.03)

U = 64
UPDATES = [(i % U, 1 + i % 3) for i in range(40)]

_DATASET_COUNTER = iter(range(50_000, 90_000))


def fresh_dataset_id():
    return next(_DATASET_COUNTER)


@pytest.fixture(scope="module")
def server():
    handle = ProverServer(F).serve_in_thread()
    yield handle
    handle.stop()


def run_workload(host, port, dataset_id, seed=0, retry=FAST_RETRY,
                 op_timeout=5.0, copies=1):
    """The canonical chaos workload: provision, stream, verify one F2.

    Identical seeds produce identical verifier randomness, so two runs
    of this function against equal datasets must produce byte-identical
    transcripts no matter what the wire did in between.
    """
    client = ServiceClient(host, port, F, U, dataset_id=dataset_id,
                           rng=random.Random(seed), retry=retry,
                           op_timeout=op_timeout)
    with client:
        client.provision(("f2",), copies)
        client.send_updates(UPDATES)
        outcomes = client.query(f2())
    return outcomes, client


def run_via_proxy(server, schedule, **kwargs):
    proxy = ChaosProxy(*server.address, schedule=schedule)
    handle = proxy.serve_in_thread()
    try:
        host, port = handle.address
        outcomes, client = run_workload(host, port, fresh_dataset_id(),
                                        **kwargs)
        return outcomes, client, proxy
    finally:
        handle.stop()


@pytest.fixture(scope="module")
def reference(server):
    """The fault-free run every recovery path must byte-match."""
    outcomes, client, proxy = run_via_proxy(server, FaultSchedule())
    assert all(o.result.accepted for o in outcomes)
    assert client.retries == 0 and client.reconnects == 0
    return {
        "bytes": [encode_transcript(F, o.transcript) for o in outcomes],
        "frames": proxy.global_frames,
        "values": [o.result.value for o in outcomes],
    }


def assert_matches_reference(outcomes, reference):
    assert all(o.result.accepted for o in outcomes), [
        o.result.reason for o in outcomes
    ]
    assert [o.result.value for o in outcomes] == reference["values"]
    assert [
        encode_transcript(F, o.transcript) for o in outcomes
    ] == reference["bytes"]


# -- the tentpole: byte-identity across every failure point --------------------


def test_connection_drop_at_every_frame_boundary(server, reference):
    """Kill the connection at *every* frame of the conversation in turn;
    the client must recover each time with the exact reference bytes."""
    for index in range(reference["frames"]):
        outcomes, client, proxy = run_via_proxy(
            server, FaultSchedule.scripted({index: KIND_DROP})
        )
        assert proxy.faults_injected == 1, index
        assert_matches_reference(outcomes, reference)


@pytest.mark.parametrize("kind", [KIND_CORRUPT, KIND_TRUNCATE, KIND_STALL])
def test_structural_damage_mid_query_recovered(server, reference, kind):
    index = reference["frames"] // 2  # inside the interactive phase
    fault = Fault(kind, 0.05 if kind == KIND_STALL else 0.0)
    outcomes, client, proxy = run_via_proxy(
        server, FaultSchedule.scripted({index: fault}), op_timeout=1.0
    )
    assert proxy.faults_injected == 1
    assert client.retries >= 1
    assert_matches_reference(outcomes, reference)


def test_pure_delays_need_no_recovery(server, reference):
    plan = {index: Fault(KIND_DELAY, 0.01) for index in (2, 5, 9)}
    outcomes, client, proxy = run_via_proxy(
        server, FaultSchedule.scripted(plan)
    )
    assert proxy.faults_injected == 3
    assert client.retries == 0 and client.reconnects == 0
    assert_matches_reference(outcomes, reference)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_seeded_fault_schedules_recover_byte_identical(server, reference,
                                                       seed):
    """Hypothesis sweep (satellite): pseudo-random drop/corrupt/truncate/
    delay schedules at a small rate — every surviving query must carry
    the reference transcript bytes and verdict."""
    schedule = SeededSchedule(
        seed ^ (CHAOS_SEED << 20), rate=0.02,
        kinds=(KIND_DROP, KIND_CORRUPT, KIND_TRUNCATE, KIND_DELAY),
        delay=0.002, stall=0.05,
    )
    outcomes, client, proxy = run_via_proxy(
        server, schedule,
        retry=RetryPolicy(max_attempts=16, base_delay=0.002,
                          max_delay=0.02),
    )
    assert_matches_reference(outcomes, reference)


def test_mid_replay_disconnect_resumes_from_last_block(server):
    """A late joiner whose catch-up replay is cut mid-stream re-requests
    only the tail — no pool double-counts, and the verdict matches."""
    u = 256
    n = 5000  # > REPLAY_BLOCK, so the replay spans two data frames
    updates = [(i % u, 1 + i % 5) for i in range(n)]
    dataset = fresh_dataset_id()
    host, port = server.address

    writer = ServiceClient(host, port, F, u, dataset_id=dataset,
                           rng=random.Random(7))
    with writer:
        writer.provision(("f2",), 1)
        writer.send_updates(updates)
        want = writer.query(f2())[0]
        assert want.result.accepted

    # Frames through a fresh proxy: HELLO(0) ACK(1) REQUEST(2) DATA(3)
    # DATA(4) END(5) — drop the second data block.
    proxy = ChaosProxy(host, port,
                       schedule=FaultSchedule.scripted({4: KIND_DROP}))
    handle = proxy.serve_in_thread()
    try:
        reader = ServiceClient(*handle.address, F, u, dataset_id=dataset,
                               rng=random.Random(8), retry=FAST_RETRY)
        with reader:
            assert reader.missed_updates == n
            reader.provision(("f2",), 1)
            assert reader.replay_missed() == n
            assert reader.retries >= 1
            got = reader.query(f2())[0]
            assert got.result.accepted
            assert got.result.value == want.result.value
    finally:
        handle.stop()


def test_soundness_survives_the_faulty_wire():
    """A cheating prover behind the chaos proxy is still rejected: the
    retry layer recovers from transport damage, never from dishonesty."""

    def corrupt_f2(unit, prover, dataset):
        if unit.descriptors[0].kind != f2().kind:
            return None
        cheat = ModifiedStreamF2Prover(F, dataset.u, corrupt_key=3)
        cheat.freq = list(prover.freq)
        return cheat

    srv = ProverServer(F, prover_wrapper=corrupt_f2)
    server_handle = srv.serve_in_thread()
    try:
        proxy = ChaosProxy(
            *server_handle.address,
            schedule=FaultSchedule.scripted({8: KIND_DROP}),
        )
        handle = proxy.serve_in_thread()
        try:
            outcomes, client = run_workload(
                *handle.address, fresh_dataset_id()
            )
            assert proxy.faults_injected == 1
            assert not outcomes[0].result.accepted
            assert outcomes[0].result.reason
        finally:
            handle.stop()
    finally:
        server_handle.stop()


# -- typed transport errors (satellite) ----------------------------------------


def test_dead_service_surfaces_typed_unavailable_error():
    srv = ProverServer(F)
    handle = srv.serve_in_thread()
    client = ServiceClient(*handle.address, F, U,
                           dataset_id=1, rng=random.Random(1),
                           retry=NO_RETRY, op_timeout=0.5)
    client.provision(("f2",), 1)
    client.send_updates(UPDATES[:4])
    session = client.session_id
    handle.stop()
    with pytest.raises(ServiceUnavailableError) as excinfo:
        client.put(1, 1)
    err = excinfo.value
    assert err.session_id == session
    assert err.last_acked.startswith("updates@")
    assert "last acked" in str(err)


def test_unavailable_error_reports_last_acked_step(server, reference):
    """Mid-query transport death names the last acknowledged protocol
    step, so operators can see where the conversation died."""
    # Drop every frame from mid-query onward: retries burn out.
    plan = {index: Fault(KIND_DROP)
            for index in range(10, 10 + 4 * reference["frames"])}
    proxy = ChaosProxy(*server.address,
                       schedule=FaultSchedule.scripted(plan))
    handle = proxy.serve_in_thread()
    try:
        with pytest.raises(ServiceUnavailableError) as excinfo:
            run_workload(*handle.address, fresh_dataset_id(),
                         retry=RetryPolicy(max_attempts=2,
                                           base_delay=0.005))
        assert excinfo.value.last_acked
    finally:
        handle.stop()


# -- server-side robustness knobs ----------------------------------------------


def test_admission_control_refuses_cleanly_then_admits():
    srv = ProverServer(F, max_sessions=1)
    handle = srv.serve_in_thread()
    try:
        host, port = handle.address
        first = ServiceClient(host, port, F, U, dataset_id=1,
                              rng=random.Random(1), retry=NO_RETRY)
        # Without retries the refusal is immediate and typed.
        with pytest.raises(ServiceBusyError) as excinfo:
            ServiceClient(host, port, F, U, dataset_id=2,
                          rng=random.Random(2), retry=NO_RETRY)
        assert excinfo.value.code == sp.E_BUSY
        assert srv.registry.refusals >= 1
        # With backoff the second client waits out the capacity squeeze.
        releaser = threading.Timer(0.15, first.close)
        releaser.start()
        try:
            second = ServiceClient(
                host, port, F, U, dataset_id=2, rng=random.Random(2),
                retry=RetryPolicy(max_attempts=20, base_delay=0.02,
                                  max_delay=0.05),
            )
        finally:
            releaser.join()
        with second:
            assert second.refusals >= 1
            second.provision(("f2",), 1)
            second.send_updates(UPDATES)
            assert second.query(f2())[0].result.accepted
    finally:
        handle.stop()


def test_inflight_query_cap_is_per_session():
    srv = ProverServer(F, max_inflight_queries=1)
    handle = srv.serve_in_thread()
    try:
        client = ServiceClient(*handle.address, F, U, dataset_id=1,
                               rng=random.Random(3), retry=NO_RETRY)
        with client:
            client.provision(("f2",), 1)
            client.send_updates(UPDATES)
            open_words = sp.words_payload(F, [0, *f2().to_words()])
            client._request(sp.T_QUERY_OPEN, client.session_id,
                            open_words, expect=sp.T_QUERY_ACK)
            with pytest.raises(ServiceBusyError):
                client._request(sp.T_QUERY_OPEN, client.session_id,
                                open_words, expect=sp.T_QUERY_ACK)
    finally:
        handle.stop()


def test_rate_limited_session_backs_off_and_completes(reference):
    """A token-bucket squeeze slows the conversation down but does not
    change a single transcript byte: refused frames were never
    processed, so the resend continues exactly where the protocol was."""
    srv = ProverServer(F, rate_limit=(300.0, 8.0))
    handle = srv.serve_in_thread()
    try:
        outcomes, client = run_workload(
            *handle.address, fresh_dataset_id(),
            retry=RetryPolicy(max_attempts=30, base_delay=0.005,
                              max_delay=0.02),
        )
        assert srv.rate_limited >= 1
        assert client.refusals >= 1
        assert client.reconnects == 0  # backoff in place, no resync
        assert_matches_reference(outcomes, reference)
    finally:
        handle.stop()


def test_server_idle_timeout_sheds_and_client_resumes():
    srv = ProverServer(F, idle_timeout=0.15)
    handle = srv.serve_in_thread()
    try:
        client = ServiceClient(*handle.address, F, U, dataset_id=1,
                               rng=random.Random(5), retry=FAST_RETRY)
        with client:
            client.provision(("f2",), 1)
            client.send_updates(UPDATES)
            time.sleep(0.4)  # the server sheds the silent connection
            outcome = client.query(f2())[0]
            assert outcome.result.accepted
            assert client.reconnects >= 1
            assert srv.timeouts >= 1
    finally:
        handle.stop()


def test_server_frame_timeout_sends_structured_error():
    srv = ProverServer(F, frame_timeout=0.1)
    handle = srv.serve_in_thread()
    try:
        sock = socket.create_connection(handle.address, timeout=5.0)
        try:
            # A header promising 32 payload bytes that never arrive.
            frame = sp.pack_frame(sp.T_STATS, 0, b"\0" * 32)
            sock.sendall(frame[: sp.HEADER_LEN])
            header = b""
            while len(header) < sp.HEADER_LEN:
                chunk = sock.recv(sp.HEADER_LEN - len(header))
                assert chunk, "server closed without a structured error"
                header += chunk
            frame_type, _session, length = sp.unpack_header(header)
            assert frame_type == sp.T_ERROR
            payload = b""
            while len(payload) < length:
                payload += sock.recv(length - len(payload))
            code, message = sp.parse_error_struct(payload)
            assert code == sp.E_TIMEOUT
            assert "timed out" in message
            assert srv.timeouts >= 1
        finally:
            sock.close()
    finally:
        handle.stop()


def test_max_frame_size_enforced_on_both_ends():
    srv = ProverServer(F, max_payload=64)
    handle = srv.serve_in_thread()
    try:
        client = ServiceClient(*handle.address, F, U, dataset_id=1,
                               rng=random.Random(6), retry=NO_RETRY)
        client.provision(("f2",), 1)
        # 40 update pairs encode far beyond 64 payload bytes: the server
        # rejects the header before allocating, as transport damage.
        with pytest.raises(ServiceUnavailableError):
            client.send_updates(UPDATES)
        # The client-side knob rejects oversized *inbound* headers the
        # same way, before any allocation.
        big = sp.pack_frame(sp.T_P_REPLY, 1, b"\0" * 128)
        with pytest.raises(sp.ServiceProtocolError):
            sp.unpack_header(big[: sp.HEADER_LEN], max_payload=64)
    finally:
        handle.stop()


# -- snapshot / restore --------------------------------------------------------


def test_snapshot_restore_across_server_restart(tmp_path, server):
    """Stop the server mid-session, restore a new one from its snapshot
    behind the same proxy address: the client reconnects on its own and
    the post-restart query is byte-identical to a never-restarted run."""
    # Control: the same client life (two queries) with no restart.
    control_client = ServiceClient(*server.address, F, U,
                                   dataset_id=fresh_dataset_id(),
                                   rng=random.Random(3), retry=FAST_RETRY)
    with control_client:
        control_client.provision(("f2",), 2)
        control_client.send_updates(UPDATES)
        first_control = control_client.query(f2())
        second_control = control_client.query(f2())

    srv1 = ProverServer(F)
    handle1 = srv1.serve_in_thread()
    proxy = ChaosProxy(*handle1.address)
    proxy_handle = proxy.serve_in_thread()
    path = tmp_path / "service.snapshot"
    try:
        client = ServiceClient(*proxy_handle.address, F, U,
                               dataset_id=fresh_dataset_id(),
                               rng=random.Random(3), retry=FAST_RETRY)
        with client:
            client.provision(("f2",), 2)
            client.send_updates(UPDATES)
            first = client.query(f2())

            handle1.snapshot(path)
            handle1.stop()

            srv2 = ProverServer.from_snapshot(path, F)
            handle2 = srv2.serve_in_thread()
            try:
                proxy_handle.retarget(handle2.server.port)
                # The old connection is dead; the next query retries,
                # reconnects through the proxy, lands on the restored
                # dataset, and must reproduce the control bytes.
                second = client.query(f2())
                assert client.reconnects >= 1
                assert srv2.registry.stats()["updates"] == len(UPDATES)
            finally:
                handle2.stop()
        assert all(o.result.accepted for o in first + second)
        assert [encode_transcript(F, o.transcript) for o in first] == \
            [encode_transcript(F, o.transcript) for o in first_control]
        assert [encode_transcript(F, o.transcript) for o in second] == \
            [encode_transcript(F, o.transcript) for o in second_control]
    finally:
        proxy_handle.stop()
        handle1.stop()


def test_snapshot_rejects_field_and_version_mismatch(tmp_path):
    from repro.field.modular import PrimeField
    from repro.service.registry import RegistryError, SessionRegistry

    registry = SessionRegistry(F)
    registry.connect(U, 1)
    registry.datasets[1].apply(0, [(3, 2)])
    path = tmp_path / "snap.json"
    registry.snapshot(path)

    restored = SessionRegistry.restore(path, F)
    assert restored.datasets[1].freq_a[3] == 2
    assert restored.datasets[1].log == registry.datasets[1].log

    with pytest.raises(RegistryError, match="Z_"):
        SessionRegistry.restore(path, PrimeField((1 << 31) - 1))
    import json
    payload = json.loads(path.read_text())
    payload["version"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(RegistryError, match="version"):
        SessionRegistry.restore(path, F)


# -- worker-pool death and graceful degradation --------------------------------


class _FlakyExecutor:
    """A thread-pool wrapper that dies on scheduled submit calls.

    Failures happen *at submission*, before the task runs — the
    recovery contract re-runs only tasks that never executed.
    """

    def __init__(self, state):
        self._real = ThreadPoolExecutor(max_workers=2)
        self._state = state

    def submit(self, fn, *args):
        self._state["submits"] += 1
        if self._state["submits"] in self._state["fail_at"]:
            raise BrokenExecutor("injected worker-pool death")
        return self._real.submit(fn, *args)

    def shutdown(self, wait=True):
        self._real.shutdown(wait=wait)


def _flaky_factory(fail_at):
    state = {"submits": 0, "made": 0, "fail_at": set(fail_at)}

    def factory():
        state["made"] += 1
        return _FlakyExecutor(state)

    return factory, state


def _sequential_f2_reference(u, updates, point):
    prover = DistributedF2Prover(F, u, num_workers=8)
    prover.process_stream(updates)
    verifier = F2Verifier(F, u, point=point)
    verifier.process_stream(updates)
    channel = Channel()
    result = run_f2(prover, verifier, channel)
    assert result.accepted
    return result, channel.transcript.messages


def test_pool_survives_worker_death_with_identical_transcript():
    u = 1 << 8
    stream = uniform_frequency_stream(u, max_frequency=9,
                                      rng=random.Random(21))
    updates = list(stream.updates())
    point = F.rand_vector(random.Random(22), 8)
    want, want_messages = _sequential_f2_reference(u, updates, point)

    factory, state = _flaky_factory(fail_at={1, 20})
    with PooledDistributedF2Prover(F, u, num_workers=8,
                                   executor_factory=factory) as prover:
        prover.process_stream(updates)
        verifier = F2Verifier(F, u, point=point)
        verifier.process_stream(updates)
        channel = Channel()
        got = run_f2(prover, verifier, channel)
        assert prover.pool_failures == 2
        assert prover.pool_restarts == 2
        assert not prover._degraded

    assert got.accepted and got.value == want.value
    assert channel.transcript.messages == want_messages


def test_pool_degrades_to_inline_after_repeated_death():
    u = 1 << 8
    stream = uniform_frequency_stream(u, max_frequency=9,
                                      rng=random.Random(23))
    updates = list(stream.updates())
    point = F.rand_vector(random.Random(24), 8)
    want, want_messages = _sequential_f2_reference(u, updates, point)

    factory, state = _flaky_factory(fail_at=set(range(1, 10_000)))
    with PooledDistributedF2Prover(F, u, num_workers=8,
                                   executor_factory=factory) as prover:
        prover.process_stream(updates)
        verifier = F2Verifier(F, u, point=point)
        verifier.process_stream(updates)
        channel = Channel()
        got = run_f2(prover, verifier, channel)
        # Two rebuilds were spent, then the prover went in-process for
        # good: no further executors are created.
        assert prover._degraded
        made_when_degraded = state["made"]

    assert state["made"] == made_when_degraded
    assert got.accepted and got.value == want.value
    assert channel.transcript.messages == want_messages


# -- the loadgen acceptance run ------------------------------------------------


def test_loadgen_through_chaos_proxy_zero_visible_errors(server):
    """The headline acceptance criterion: a loadgen run through a 10%
    fault-rate proxy finishes with *zero* client-visible protocol errors
    — only clean retries, refusals and reconnects — and every query
    verifies."""
    kinds = (KIND_DELAY,) * 8 + (KIND_DROP, KIND_CORRUPT)
    schedule = SeededSchedule(CHAOS_SEED, rate=0.10, kinds=kinds,
                              delay=0.001, stall=0.05)
    proxy = ChaosProxy(*server.address, schedule=schedule)
    handle = proxy.serve_in_thread()
    try:
        host, port = handle.address
        report = run_load(
            host, port, F, 1 << 8, sessions=3, updates_per_session=60,
            concurrency=3, seed=CHAOS_SEED + 1,
            dataset_base=40_000 + CHAOS_SEED * 10,
            client_kwargs={
                "retry": RetryPolicy(max_attempts=40, base_delay=0.003,
                                     max_delay=0.02),
                "op_timeout": 10.0,
            },
        )
    finally:
        handle.stop()
    assert not report.failures, report.failures
    assert report.queries_verified == report.queries_run > 0
    assert proxy.faults_injected > 0
    record = report.as_record()
    assert record["errors"] == 0
    assert record["query_p99_seconds"] >= record["query_p50_seconds"] > 0
    assert record["retries"] == report.retries
    assert record["reconnects"] == report.reconnects
