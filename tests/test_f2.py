"""Tests for the SELF-JOIN SIZE protocol (Section 3.1, Theorem 4)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.comm.channel import Channel, drop_last_word, flip_word
from repro.core.f2 import (
    F2Prover,
    F2Verifier,
    run_f2,
    self_join_size_protocol,
)
from repro.field.modular import DEFAULT_FIELD
from repro.streams.generators import turnstile_stream, uniform_frequency_stream
from repro.streams.model import Stream

F = DEFAULT_FIELD

updates_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63),
              st.integers(min_value=-30, max_value=30)),
    max_size=50,
)


def run_on(stream, seed=0, channel=None):
    verifier = F2Verifier(F, stream.u, rng=random.Random(seed))
    prover = F2Prover(F, stream.u)
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process(i, delta)
    return run_f2(prover, verifier, channel)


@given(updates_strategy)
def test_completeness_random_streams(updates):
    """An honest prover is always accepted and the value is exact."""
    stream = Stream(64, updates)
    result = run_on(stream)
    assert result.accepted
    assert result.value == stream.self_join_size() % F.p


def test_exact_value_on_known_stream():
    stream = Stream.from_items(8, [1, 3, 3, 5, 7, 7, 7])
    result = run_on(stream)
    assert result.accepted
    assert result.value == 1 + 4 + 1 + 9


def test_empty_stream():
    result = run_on(Stream(16))
    assert result.accepted
    assert result.value == 0


def test_single_key_universe():
    stream = Stream(1, [(0, 5)])
    result = run_on(stream)
    assert result.accepted
    assert result.value == 25


def test_non_power_of_two_universe_padded():
    stream = Stream.from_items(100, [99, 99, 0])
    result = run_on(stream)
    assert result.accepted
    assert result.value == 5


def test_turnstile_deletions():
    stream = turnstile_stream(64, 300, rng=random.Random(2))
    result = run_on(stream)
    assert result.accepted
    assert result.value == stream.self_join_size() % F.p


def test_rounds_and_communication_logarithmic():
    """(log u, log u): d rounds, 3 words per prover message."""
    for log_u in (4, 8, 10):
        u = 1 << log_u
        stream = uniform_frequency_stream(u, max_frequency=5,
                                          rng=random.Random(3))
        result = run_on(stream)
        assert result.accepted
        assert result.transcript.rounds == log_u
        assert result.transcript.prover_words == 3 * log_u
        assert result.transcript.verifier_words == log_u - 1
        assert result.verifier_space_words <= log_u + 10


def test_challenge_rd_never_revealed():
    """The final coordinate r_d stays private (soundness hinges on it)."""
    stream = uniform_frequency_stream(64, rng=random.Random(4))
    verifier = F2Verifier(F, 64, rng=random.Random(5))
    prover = F2Prover(F, 64)
    verifier.process_stream(stream.updates())
    prover.process_stream(stream.updates())
    result = run_f2(prover, verifier)
    sent = [
        w
        for m in result.transcript.messages_from("verifier")
        for w in m.payload
    ]
    assert verifier.r[-1] not in sent
    assert len(sent) == verifier.d - 1


@pytest.mark.parametrize("round_index", [0, 3, 5])
def test_tampered_message_rejected(round_index):
    stream = uniform_frequency_stream(64, rng=random.Random(6))
    channel = Channel(tamper=flip_word(round_index=round_index, position=1))
    result = run_on(stream, seed=7, channel=channel)
    assert not result.accepted
    assert result.reason


def test_truncated_message_rejected_for_degree():
    """A short message = degree violation: rejected structurally."""
    stream = uniform_frequency_stream(32, rng=random.Random(8))
    channel = Channel(tamper=drop_last_word(round_index=2))
    result = run_on(stream, seed=9, channel=channel)
    assert not result.accepted
    assert "words" in result.reason


def test_dimension_mismatch_rejected():
    verifier = F2Verifier(F, 64, rng=random.Random(10))
    prover = F2Prover(F, 128)
    result = run_f2(prover, verifier)
    assert not result.accepted


def test_prover_requires_begin_proof():
    prover = F2Prover(F, 8)
    with pytest.raises(RuntimeError):
        prover.round_message()
    with pytest.raises(RuntimeError):
        prover.receive_challenge(1)


def test_prover_true_answer_is_integer_f2():
    prover = F2Prover(F, 8)
    prover.process_stream([(0, 3), (1, -2)])
    assert prover.true_answer() == 9 + 4


def test_prover_table_folding_preserves_sum_identity():
    """Internal invariant of Appendix B.1: after folding with r, the round
    polynomial evaluated at r equals the next round's g(0)+g(1)."""
    rng = random.Random(11)
    prover = F2Prover(F, 32)
    for _ in range(40):
        prover.process(rng.randrange(32), rng.randint(-5, 5))
    prover.begin_proof()
    from repro.field.polynomial import evaluate_from_evals

    for _ in range(prover.d - 1):
        msg = prover.round_message()
        r = F.rand(rng)
        expected = evaluate_from_evals(F, msg, r)
        prover.receive_challenge(r)
        nxt = prover.round_message()
        assert (nxt[0] + nxt[1]) % F.p == expected


def test_verifier_rejects_out_of_universe_key():
    verifier = F2Verifier(F, 16, rng=random.Random(12))
    with pytest.raises(ValueError):
        verifier.process(16, 1)


def test_end_to_end_helper():
    stream = Stream.from_items(32, [5, 5, 9])
    result = self_join_size_protocol(stream, F, rng=random.Random(13))
    assert result.accepted
    assert result.value == stream.self_join_size()


def test_independent_runs_use_independent_randomness():
    stream = Stream.from_items(16, [3, 3])
    v1 = F2Verifier(F, 16, rng=random.Random(14))
    v2 = F2Verifier(F, 16, rng=random.Random(15))
    assert v1.r != v2.r


def test_fixed_point_reproducible():
    point = [5, 6, 7, 8]
    v1 = F2Verifier(F, 16, point=point)
    v2 = F2Verifier(F, 16, point=point)
    stream = Stream.from_items(16, [1, 2, 3])
    v1.process_stream(stream.updates())
    v2.process_stream(stream.updates())
    assert v1.lde.value == v2.lde.value
