"""Trace continuity through recovery: failover and pool-worker death.

The trace-propagation promise is only interesting when the path breaks:
a conversation that fails over between cluster nodes, or a proof whose
worker process is SIGKILLed mid-round, must still stitch into **one**
trace — a single connected span tree rooted at the client session, with
spans from every node that touched the conversation.  Alongside the
tree, the recovery counters must actually count: a kill that forced a
failover shows up in ``repro_cluster_failovers_total``, a dead worker
in ``repro_pool_failures_total``.
"""

from __future__ import annotations

import io
import json
import os
import random
import signal

import pytest

from repro import obs
from repro.comm.channel import Channel
from repro.comm.wire import encode_transcript
from repro.core.base import pow2_dimension
from repro.core.f2 import F2Verifier, run_f2
from repro.field.modular import DEFAULT_FIELD as F
from repro.service import (
    ClusterNode,
    ClusterRouter,
    NodeSupervisor,
    ProcessPooledDistributedF2Prover,
    RetryPolicy,
    ServiceClient,
    ThreadNodeManager,
    f2,
)

FAST_RETRY = RetryPolicy(max_attempts=10, base_delay=0.005, max_delay=0.03)

U = 64
UPDATES = [(i % U, 1 + i % 3) for i in range(40)]

_DATASET_COUNTER = iter(range(300_000, 340_000))


def fresh_dataset_id():
    return next(_DATASET_COUNTER)


@pytest.fixture()
def cluster(tmp_path):
    """Three thread-backed nodes, a replication-2 router, a supervisor
    (heartbeats off — deaths surface through relay errors)."""
    manager = ThreadNodeManager(F, snapshot_dir=str(tmp_path))
    nodes = [
        ClusterNode(node_id, *manager.add_node(node_id))
        for node_id in ("n0", "n1", "n2")
    ]
    router = ClusterRouter(F, nodes, replication_factor=2,
                           heartbeat_interval=None, backend_timeout=5.0)
    handle = router.serve_in_thread()
    supervisor = NodeSupervisor(handle, manager, F)
    yield {
        "manager": manager,
        "router": router,
        "handle": handle,
        "supervisor": supervisor,
    }
    supervisor.stop()
    handle.stop()
    manager.stop_all()


@pytest.fixture()
def traced():
    """Global tracer + fresh registry for one test; yields the span sink."""
    sink = io.StringIO()
    old_tracer = obs.set_tracer(obs.Tracer(sink=sink, enabled=True))
    old_reg = obs.set_registry(obs.MetricsRegistry(enabled=True))
    yield sink
    obs.set_tracer(old_tracer)
    obs.set_registry(old_reg)


def _spans(sink):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


def _assert_single_connected_trace(spans):
    """One trace id, one root, every parent resolves to an emitted span."""
    assert spans
    traces = {s["trace"] for s in spans}
    assert len(traces) == 1, "conversation split into traces: %s" % traces
    ids = {s["span"] for s in spans}
    roots = [s for s in spans if s["parent"] is None]
    assert len(roots) == 1, [s["name"] for s in roots]
    assert roots[0]["name"] == "client.session"
    dangling = [s["name"] for s in spans
                if s["parent"] is not None and s["parent"] not in ids]
    assert not dangling, "unparented spans: %s" % dangling


def test_failover_keeps_one_connected_trace(cluster, traced):
    """Kill the primary mid-conversation: the retried query fails over
    to the replica, and the whole conversation — including spans from
    *both* serving nodes — is still a single span tree."""
    handle = cluster["handle"]
    manager = cluster["manager"]
    dataset = fresh_dataset_id()
    primary, failover = cluster["router"].replicas(dataset)

    client = ServiceClient(*handle.address, F, U, dataset_id=dataset,
                           rng=random.Random(7), retry=FAST_RETRY)
    with client:
        client.provision(("f2",), 1)
        client.send_updates(UPDATES)
        manager.kill(primary)
        (outcome,) = client.query(f2())
        assert client.retries >= 1  # the kill hit mid-conversation
    assert outcome.result.accepted
    assert encode_transcript(F, outcome.transcript)

    spans = _spans(traced)
    _assert_single_connected_trace(spans)

    # Both serving nodes appear inside the one trace: the original
    # primary saw the (traced) update blocks before it died, and the
    # failover target served every traced proof round after the kill.
    # (Initial HELLOs are untraced by construction — version 1, before
    # the capability handshake — so session.open spans only come from
    # traced mirror opens.)
    server_nodes = {s["node"] for s in spans
                    if s["name"].startswith("server.")}
    assert {primary, failover} <= server_nodes
    update_nodes = {s["node"] for s in spans
                    if s["name"] == "server.update.block"}
    assert primary in update_nodes
    proof_nodes = {s["node"] for s in spans
                   if s["name"] == "server.proof.round"}
    assert proof_nodes == {failover}

    # The recovery was counted where dashboards will look for it.
    reg = obs.get_registry()
    assert reg.counter("repro_cluster_failovers_total").value >= 1
    assert handle.stats()["failovers"] >= 1


def test_pool_worker_sigkill_stays_in_trace_and_counters(traced):
    """SIGKILL a live pool worker mid-proof: the prover rebuilds the
    pool, the proof still verifies, the map steps stay inside the
    active trace, and the failure/rerun counters record the event."""
    u = 1 << 9
    updates = [((i * 17) % u, 1 + i % 7) for i in range(200)]
    point = F.rand_vector(random.Random(52), pow2_dimension(u))

    tracer = obs.get_tracer()
    with ProcessPooledDistributedF2Prover(F, u, num_workers=4) as prover:
        prover.warm_up(delay=0.01)
        prover.process_stream(updates)
        verifier = F2Verifier(F, u, point=point)
        verifier.process_stream(updates)

        state = {"round": 0}
        real_round_message = prover.round_message

        def killing_round_message():
            if state["round"] == 2 and prover._executor is not None:
                victims = [
                    p.pid for p in prover._executor._processes.values()
                ]
                assert victims, "pool has no live workers to kill"
                os.kill(victims[0], signal.SIGKILL)
            state["round"] += 1
            return real_round_message()

        prover.round_message = killing_round_message
        with tracer.span("proof.f2", root=True) as root:
            got = run_f2(prover, verifier, Channel())
        assert prover.pool_failures >= 1

    assert got.accepted

    spans = _spans(traced)
    maps = [s for s in spans if s["name"] == "pool.map"]
    assert maps, "no pool.map spans emitted"
    assert all(s["trace"] == "%016x" % root.ctx.trace_id for s in maps)
    assert all(s["mode"] == "process" for s in maps)

    reg = obs.get_registry()
    assert reg.counter("repro_pool_failures_total").value >= 1
    assert reg.counter("repro_pool_restarts_total").value >= 1
    assert reg.counter("repro_pool_task_reruns_total").value >= 1
