"""Tests for the low-space (fingerprint) heavy-hitters variant (Sec. 6.1,
the (log u, 1/φ·log u) improvement)."""

from __future__ import annotations

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.heavy_hitters import (
    HeavyHittersProver,
    HeavyHittersVerifier,
    run_heavy_hitters,
)
from repro.field.modular import DEFAULT_FIELD
from repro.streams.generators import zipf_stream
from repro.streams.model import Stream

F = DEFAULT_FIELD


def run_on(stream, phi, seed=0, low_space=True):
    verifier = HeavyHittersVerifier(F, stream.u, phi, rng=random.Random(seed))
    prover = HeavyHittersProver(F, stream.u, phi)
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process(i, delta)
    return run_heavy_hitters(prover, verifier, low_space=low_space)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=31),
                          st.integers(min_value=1, max_value=15)),
                min_size=1, max_size=25))
def test_low_space_completeness(updates):
    stream = Stream(32, updates)
    result = run_on(stream, 0.2)
    assert result.accepted
    assert result.value == stream.heavy_hitters(0.2)


def test_low_space_matches_basic_variant():
    stream = zipf_stream(256, 4000, rng=random.Random(1))
    basic = run_on(stream, 0.02, seed=2, low_space=False)
    low = run_on(stream, 0.02, seed=2, low_space=True)
    assert basic.accepted and low.accepted
    assert basic.value == low.value
    # Same proof: the variant changes only the verifier's bookkeeping.
    assert (basic.transcript.prover_words == low.transcript.prover_words)


def test_low_space_concealment_caught():
    from repro.adversary import ConcealingHeavyHittersProver

    stream = Stream.from_items(64, [7] * 40 + [20] * 40 + [1] * 10)
    verifier = HeavyHittersVerifier(F, 64, 0.3, rng=random.Random(3))
    prover = ConcealingHeavyHittersProver(F, 64, 0.3, conceal_key=7)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)
    result = run_heavy_hitters(prover, verifier, low_space=True)
    assert not result.accepted


def test_low_space_inflation_caught():
    from repro.adversary import InflatingHeavyHittersProver

    stream = Stream.from_items(64, [7] * 40 + [1] * 10)
    verifier = HeavyHittersVerifier(F, 64, 0.3, rng=random.Random(4))
    prover = InflatingHeavyHittersProver(F, 64, 0.3, inflate_key=1,
                                         amount=500)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)
    result = run_heavy_hitters(prover, verifier, low_space=True)
    assert not result.accepted


def test_low_space_tampered_replay_caught():
    """Altering a heavy record's hash at a middle level breaks the
    fingerprint replay even though the final chain might be repaired."""
    from repro.comm.channel import Channel

    stream = Stream.from_items(64, [7] * 64)
    verifier = HeavyHittersVerifier(F, 64, 0.5, rng=random.Random(5))
    prover = HeavyHittersProver(F, 64, 0.5)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)

    def tamper(message):
        if message.label == "level3" and message.payload:
            payload = list(message.payload)
            payload[1] += 1  # hash word of the first record
            return payload
        return message.payload

    result = run_heavy_hitters(prover, verifier, Channel(tamper=tamper),
                               low_space=True)
    assert not result.accepted
    assert "fingerprint" in result.reason


def test_low_space_no_heavy_case():
    stream = Stream.from_items(64, list(range(64)))
    result = run_on(stream, 0.5)
    assert result.accepted
    assert result.value == {}
