"""Exact (s, t) cost formulas, protocol by protocol.

The paper states asymptotic costs; these tests pin the *exact* word
counts our implementation achieves, so any regression that silently
inflates communication or space fails loudly.  d = log2(padded u)
throughout; words are field elements.
"""

from __future__ import annotations

import random

from repro.core import (
    F2Prover,
    F2Verifier,
    FkProver,
    FkVerifier,
    build_reporting_session,
    run_f2,
    run_fk,
    run_subvector,
    self_join_size_protocol,
    single_round_f2_protocol,
)
from repro.core.range_sum import range_sum_protocol
from repro.core.single_round import matrix_side
from repro.field.modular import DEFAULT_FIELD
from repro.streams.generators import sparse_stream
from repro.streams.model import Stream

F = DEFAULT_FIELD


def test_f2_exact_words():
    """F2: d prover messages of 3 words; d-1 revealed challenges."""
    for log_u in (3, 6, 10):
        u = 1 << log_u
        stream = Stream(u, [(1, 2)])
        result = self_join_size_protocol(stream, F, rng=random.Random(1))
        assert result.accepted
        assert result.transcript.prover_words == 3 * log_u
        assert result.transcript.verifier_words == log_u - 1
        assert result.transcript.rounds == log_u
        assert result.verifier_space_words == log_u + 6


def test_fk_exact_words():
    """Fk: d messages of k+1 words."""
    u, log_u = 64, 6
    stream = Stream(u, [(1, 2)])
    for k in (1, 3, 7):
        verifier = FkVerifier(F, u, k, rng=random.Random(2))
        prover = FkProver(F, u, k)
        verifier.process_stream(stream.updates())
        prover.process_stream(stream.updates())
        result = run_fk(prover, verifier)
        assert result.accepted
        assert result.transcript.prover_words == (k + 1) * log_u
        assert result.transcript.verifier_words == log_u - 1


def test_single_round_exact_words():
    """One-round baseline: one message of 2ℓ-1 words; zero from V."""
    for u in (49, 256, 1000):
        ell = matrix_side(u)
        stream = Stream(u, [(1, 2)])
        result = single_round_f2_protocol(stream, F, rng=random.Random(3))
        assert result.accepted
        assert result.transcript.prover_words == 2 * ell - 1
        assert result.transcript.verifier_words == 0
        assert result.verifier_space_words == 2 * ell + 1


def test_range_sum_exact_words():
    """RANGE-SUM: 2-word query + d messages of 3 + d-1 challenges."""
    u, log_u = 1 << 8, 8
    stream = Stream(u, [(10, 5)])
    result = range_sum_protocol(stream, 3, 200, F, rng=random.Random(4))
    assert result.accepted
    assert result.transcript.total_words == 2 + 3 * log_u + (log_u - 1)


def test_subvector_word_budget():
    """SUB-VECTOR: 2k answer words + per-level at most 2 sibling pairs
    (4 words) + query (2) + d-1 challenges."""
    u, log_u = 1 << 9, 9
    stream = sparse_stream(u, 12, rng=random.Random(5))
    prover, verifier = build_reporting_session(stream, F,
                                               rng=random.Random(6))
    lo, hi = 37, 401
    result = run_subvector(prover, verifier, lo, hi)
    assert result.accepted
    k = result.value.k
    budget = 2 * k + 2 + (log_u - 1) + 4 * log_u
    assert result.transcript.total_words <= budget


def test_f2_verifier_space_independent_of_stream_length():
    """Space depends on log u only — stream length is irrelevant."""
    u = 1 << 8
    short = Stream(u, [(0, 1)])
    long = Stream(u, [(i % u, 1) for i in range(5000)])
    spaces = []
    for stream in (short, long):
        verifier = F2Verifier(F, u, rng=random.Random(7))
        prover = F2Prover(F, u)
        verifier.process_stream(stream.updates())
        prover.process_stream(stream.updates())
        result = run_f2(prover, verifier)
        assert result.accepted
        spaces.append(result.verifier_space_words)
    assert spaces[0] == spaces[1]


def test_space_words_property_matches_result():
    u = 1 << 7
    stream = Stream(u, [(3, 4)])
    verifier = F2Verifier(F, u, rng=random.Random(8))
    prover = F2Prover(F, u)
    verifier.process_stream(stream.updates())
    prover.process_stream(stream.updates())
    result = run_f2(prover, verifier)
    assert result.verifier_space_words == verifier.space_words


def test_mixed_batch_exact_words():
    """Heterogeneous batch of Q queries: channel words split into shared
    + per-query terms matching the paper's communication bounds.

    Shared: the d-1 revealed challenges, paid once for the whole batch.
    Per query: d messages of (degree+1) words — 3 for F2/INNER-PRODUCT/
    RANGE-SUM, k+1 for Fk — plus the 2-word range announcement for a
    RANGE-SUM member.  query_cost(q) = own + shared is exactly what an
    independent run of the same query pays.
    """
    from repro.comm.channel import Channel
    from repro.core.multiquery import (
        BatchedSumcheckEngine,
        BatchedSumcheckVerifier,
        batch_f2,
        batch_fk,
        batch_inner_product,
        batch_range_sum,
        run_batched_sumcheck,
    )

    u, d = 1 << 7, 7
    k = 4
    queries = [batch_range_sum(3, 90), batch_f2(), batch_fk(k),
               batch_inner_product(), batch_range_sum(0, u - 1)]
    engine = BatchedSumcheckEngine(F, u)
    verifier = BatchedSumcheckVerifier(F, u, rng=random.Random(40))
    for i, delta in [(3, 5), (77, 2), (90, 1)]:
        engine.process(i, delta)
        verifier.process_a(i, delta)
    for i, delta in [(3, 4), (10, 1)]:
        engine.process_b(i, delta)
        verifier.process_b(i, delta)
    channel = Channel()
    results = run_batched_sumcheck(engine, verifier, queries, channel)
    assert all(r.accepted for r in results)

    # Shared words: the revealed challenges, once for the batch.
    assert channel.shared_words == d - 1
    # Per-query words follow each member's degree (+ range announcement).
    expected_own = [2 + 3 * d, 3 * d, (k + 1) * d, 3 * d, 2 + 3 * d]
    assert [channel.query_words[q] for q in range(len(queries))] == \
        expected_own
    # The split is exhaustive: own + shared = everything on the wire.
    assert sum(expected_own) + channel.shared_words == \
        channel.transcript.total_words
    # query_cost matches the corresponding independent runs exactly
    # (cf. test_f2_exact_words / test_fk_exact_words /
    # test_range_sum_exact_words above).
    assert channel.query_cost(1) == 3 * d + (d - 1)
    assert channel.query_cost(2) == (k + 1) * d + (d - 1)
    assert channel.query_cost(0) == 2 + 3 * d + (d - 1)


def test_exponential_gap_headline():
    """The abstract's claim, quantified: at u = 2^16 the verifier uses
    ~22 words against a 65,536-entry vector — a >2900x space reduction
    relative to the plain-streaming lower bound Ω(u)."""
    u = 1 << 16
    stream = Stream(u, [(i, 1) for i in range(0, u, 251)])
    result = self_join_size_protocol(stream, F, rng=random.Random(9))
    assert result.accepted
    assert u / result.verifier_space_words > 2900
