"""Tests for the sparse provers (the n·log(u/n) prover bound)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.f2 import F2Prover, F2Verifier, run_f2
from repro.core.sparse import SparseF2Prover, SparseSubVectorProver
from repro.core.subvector import SubVectorProver, TreeHashVerifier, run_subvector
from repro.field.modular import DEFAULT_FIELD
from repro.streams.generators import sparse_stream
from repro.streams.model import Stream

F = DEFAULT_FIELD

updates_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63),
              st.integers(min_value=-9, max_value=9)),
    max_size=30,
)


@given(updates_strategy)
def test_sparse_f2_messages_identical_to_dense(updates):
    """Drop-in equivalence: byte-identical messages at every round."""
    dense = F2Prover(F, 64)
    sparse = SparseF2Prover(F, 64)
    for i, d in updates:
        dense.process(i, d)
        sparse.process(i, d)
    dense.begin_proof()
    sparse.begin_proof()
    rng = random.Random(1)
    for j in range(dense.d):
        assert dense.round_message() == sparse.round_message()
        if j < dense.d - 1:
            r = F.rand(rng)
            dense.receive_challenge(r)
            sparse.receive_challenge(r)


@given(updates_strategy)
def test_sparse_f2_accepted_by_standard_verifier(updates):
    stream = Stream(64, updates)
    verifier = F2Verifier(F, 64, rng=random.Random(2))
    prover = SparseF2Prover(F, 64)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)
    result = run_f2(prover, verifier)
    assert result.accepted
    assert result.value == stream.self_join_size() % F.p


def test_sparse_f2_huge_universe():
    """u = 2^24 with 50 keys: impossible for the dense prover's memory
    profile in a test, trivial for the sparse one."""
    u = 1 << 24
    stream = sparse_stream(u, 50, max_frequency=100, rng=random.Random(3))
    verifier = F2Verifier(F, u, rng=random.Random(4))
    prover = SparseF2Prover(F, u)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)
    result = run_f2(prover, verifier)
    assert result.accepted
    assert result.value == stream.self_join_size() % F.p


def test_sparse_f2_cancellation_removes_keys():
    prover = SparseF2Prover(F, 16)
    prover.process(3, 5)
    prover.process(3, -5)
    assert prover.freq == {}
    assert prover.true_answer() == 0


def test_sparse_f2_universe_check():
    prover = SparseF2Prover(F, 16)
    with pytest.raises(ValueError):
        prover.process(16, 1)


def test_sparse_f2_requires_begin_proof():
    prover = SparseF2Prover(F, 8)
    with pytest.raises(RuntimeError):
        prover.round_message()
    with pytest.raises(RuntimeError):
        prover.receive_challenge(1)


@given(updates_strategy,
       st.tuples(st.integers(min_value=0, max_value=63),
                 st.integers(min_value=0, max_value=63)))
def test_sparse_subvector_matches_dense(updates, bounds):
    lo, hi = min(bounds), max(bounds)
    # Only non-negative final frequencies for reporting semantics.
    stream = Stream(64, [(i, abs(d)) for i, d in updates])
    verifier = TreeHashVerifier(F, 64, rng=random.Random(5))
    dense = SubVectorProver(F, 64)
    sparse = SparseSubVectorProver(F, 64)
    for i, d in stream.updates():
        verifier.process(i, d)
        dense.process(i, d)
        sparse.process(i, d)
    dense_result = run_subvector(dense, verifier, lo, hi)
    sparse_result = run_subvector(sparse, verifier, lo, hi)
    assert dense_result.accepted and sparse_result.accepted
    assert dense_result.value.entries == sparse_result.value.entries


def test_sparse_subvector_huge_universe():
    u = 1 << 24
    keys = sorted(random.Random(6).sample(range(u), 20))
    stream = Stream.from_items(u, keys)
    verifier = TreeHashVerifier(F, u, rng=random.Random(7))
    prover = SparseSubVectorProver(F, u)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)
    lo, hi = keys[5], keys[14]
    result = run_subvector(prover, verifier, lo, hi)
    assert result.accepted
    assert [k for k, _ in result.value.entries] == [
        k for k in keys if lo <= k <= hi
    ]


def test_sparse_subvector_normalized_variant():
    u = 256
    stream = Stream.from_items(u, [9, 77, 200])
    verifier = TreeHashVerifier(F, u, rng=random.Random(8), normalized=True)
    prover = SparseSubVectorProver(F, u, normalized=True)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)
    result = run_subvector(prover, verifier, 0, 255)
    assert result.accepted
    assert result.value.as_dict() == {9: 1, 77: 1, 200: 1}


def test_sparse_subvector_requires_query():
    prover = SparseSubVectorProver(F, 16)
    with pytest.raises(RuntimeError):
        prover.answer_entries()
    with pytest.raises(RuntimeError):
        prover.level0_siblings()
    with pytest.raises(ValueError):
        prover.receive_query(5, 4)


@given(updates_strategy, updates_strategy)
def test_sparse_inner_product_matches_dense(ua, ub):
    from repro.core.inner_product import InnerProductProver
    from repro.core.sparse import SparseInnerProductProver

    dense = InnerProductProver(F, 64)
    sparse = SparseInnerProductProver(F, 64)
    for i, d in ua:
        dense.process_a(i, d)
        sparse.process_a(i, d)
    for i, d in ub:
        dense.process_b(i, d)
        sparse.process_b(i, d)
    assert dense.true_answer() == sparse.true_answer()
    dense.begin_proof()
    sparse.begin_proof()
    rng = random.Random(10)
    for j in range(dense.d):
        assert dense.round_message() == sparse.round_message()
        if j < dense.d - 1:
            r = F.rand(rng)
            dense.receive_challenge(r)
            sparse.receive_challenge(r)


def test_sparse_inner_product_accepted_by_verifier():
    from repro.core.inner_product import InnerProductVerifier, run_inner_product
    from repro.core.sparse import SparseInnerProductProver

    u = 1 << 20
    a = Stream(u, [(5, 3), (999_999, 7)])
    b = Stream(u, [(5, 2), (12, 9)])
    verifier = InnerProductVerifier(F, u, rng=random.Random(11))
    prover = SparseInnerProductProver(F, u)
    for i, d in a.updates():
        verifier.process_a(i, d)
        prover.process_a(i, d)
    for i, d in b.updates():
        verifier.process_b(i, d)
        prover.process_b(i, d)
    result = run_inner_product(prover, verifier)
    assert result.accepted
    assert result.value == 6


def test_sparse_inner_product_validation():
    from repro.core.sparse import SparseInnerProductProver

    prover = SparseInnerProductProver(F, 16)
    import pytest as _pytest

    with _pytest.raises(ValueError):
        prover.process_a(16, 1)
    with _pytest.raises(RuntimeError):
        prover.round_message()


def test_sparse_prover_work_scales_with_n_not_u():
    """The point of sparsity: table sizes during folding stay O(n)."""
    u = 1 << 20
    prover = SparseF2Prover(F, u)
    for k in range(32):
        prover.process(k * 1000, 3)
    prover.begin_proof()
    rng = random.Random(9)
    max_table = 0
    for j in range(prover.d):
        prover.round_message()
        max_table = max(max_table, len(prover._table))
        if j < prover.d - 1:
            prover.receive_challenge(F.rand(rng))
    assert max_table <= 32
