"""Tests for repro.adversary — every cheating strategy must be caught.

This is the library-level version of the Section 5 robustness experiment:
"In all cases, the protocols caught the error, and rejected the proof."
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import (
    AdaptiveF2Cheater,
    AlteringSubVectorProver,
    ConcealingHeavyHittersProver,
    InflatingHeavyHittersProver,
    InjectingSubVectorProver,
    ModifiedStreamF2Prover,
    OffsetClaimF2Prover,
    OmittingSubVectorProver,
    corrupted_copy,
)
from repro.core.f2 import F2Prover, F2Verifier, run_f2
from repro.core.heavy_hitters import HeavyHittersVerifier, run_heavy_hitters
from repro.core.subvector import SubVectorProver, TreeHashVerifier, run_subvector
from repro.field.modular import DEFAULT_FIELD
from repro.streams.generators import sparse_stream, uniform_frequency_stream
from repro.streams.model import Stream

F = DEFAULT_FIELD
U = 128


@pytest.fixture()
def stream():
    return uniform_frequency_stream(U, max_frequency=20,
                                    rng=random.Random(42))


def f2_run(stream, prover, seed=1):
    verifier = F2Verifier(F, stream.u, rng=random.Random(seed))
    verifier.process_stream(stream.updates())
    prover.process_stream(stream.updates())
    return run_f2(prover, verifier)


def test_modified_stream_prover_rejected(stream):
    prover = ModifiedStreamF2Prover(F, U, corrupt_key=5, offset=3)
    result = f2_run(stream, prover)
    assert not result.accepted
    # Its messages are internally consistent, so only the final LDE check
    # can catch it.
    assert "final check" in result.reason


def test_offset_claim_prover_rejected(stream):
    result = f2_run(stream, OffsetClaimF2Prover(F, U, offset=7))
    assert not result.accepted


def test_adaptive_cheater_survives_until_final_check(stream):
    result = f2_run(stream, AdaptiveF2Cheater(F, U, offset=1))
    assert not result.accepted
    assert "final check" in result.reason


def test_adaptive_cheater_would_claim_wrong_value(stream):
    """Verify the cheater actually inflates the claim before being caught."""
    prover = AdaptiveF2Cheater(F, U, offset=5)
    prover.process_stream(stream.updates())
    prover.begin_proof()
    msg = prover.round_message()
    claimed = (msg[0] + msg[1]) % F.p
    assert claimed == (stream.self_join_size() + 5) % F.p


def test_honest_control_accepted(stream):
    assert f2_run(stream, F2Prover(F, U)).accepted


def test_corrupted_copy_helper(stream):
    copy = corrupted_copy(stream, key=3, offset=2)
    assert len(copy) == len(stream) + 1
    assert copy.frequency_vector()[3] == stream.frequency_vector()[3] + 2
    # Proof built from the corrupted copy fails against the true stream.
    prover = F2Prover(F, U)
    verifier = F2Verifier(F, U, rng=random.Random(2))
    verifier.process_stream(stream.updates())
    prover.process_stream(copy.updates())
    assert not run_f2(prover, verifier).accepted


def subvector_run(stream, prover, lo, hi, seed=3):
    verifier = TreeHashVerifier(F, stream.u, rng=random.Random(seed))
    verifier.process_stream(stream.updates())
    prover.process_stream(stream.updates())
    return run_subvector(prover, verifier, lo, hi)


def test_omitting_subvector_prover_rejected():
    stream = sparse_stream(U, 12, rng=random.Random(4))
    present = sorted(stream.sparse_frequencies())
    prover = OmittingSubVectorProver(F, U, omit_key=present[0])
    result = subvector_run(stream, prover, 0, U - 1)
    assert not result.accepted


def test_altering_subvector_prover_rejected():
    stream = sparse_stream(U, 12, rng=random.Random(5))
    present = sorted(stream.sparse_frequencies())
    prover = AlteringSubVectorProver(F, U, alter_key=present[1], offset=9)
    result = subvector_run(stream, prover, 0, U - 1)
    assert not result.accepted


def test_injecting_subvector_prover_rejected():
    stream = Stream(U, [(10, 5)])
    prover = InjectingSubVectorProver(F, U, inject_key=11, value=3)
    result = subvector_run(stream, prover, 8, 15)
    assert not result.accepted


def test_injecting_prover_validates_key():
    stream = Stream(U, [(10, 5)])
    prover = InjectingSubVectorProver(F, U, inject_key=10)
    prover.process_stream(stream.updates())
    prover.receive_query(8, 15)
    with pytest.raises(ValueError):
        prover.answer_entries()


def test_honest_subvector_control():
    stream = sparse_stream(U, 12, rng=random.Random(6))
    prover = SubVectorProver(F, U)
    result = subvector_run(stream, prover, 0, U - 1)
    assert result.accepted


def hh_run(stream, prover, phi, seed=7):
    verifier = HeavyHittersVerifier(F, stream.u, phi,
                                    rng=random.Random(seed))
    verifier.process_stream(stream.updates())
    prover.process_stream(stream.updates())
    return run_heavy_hitters(prover, verifier)


def test_concealing_hh_prover_rejected():
    stream = Stream.from_items(U, [3] * 60 + [90] * 50 + [7] * 10)
    prover = ConcealingHeavyHittersProver(F, U, 0.3, conceal_key=3)
    assert not hh_run(stream, prover, 0.3).accepted


def test_inflating_hh_prover_rejected():
    stream = Stream.from_items(U, [3] * 60 + [7] * 10)
    prover = InflatingHeavyHittersProver(F, U, 0.3, inflate_key=7,
                                         amount=1000)
    assert not hh_run(stream, prover, 0.3).accepted


def test_soundness_error_bound_is_negligible():
    """Lemma 1: failure probability 2dℓ/p. For u = 2^20 over p = 2^61 - 1
    that is ~2^-54 — document the arithmetic the experiments rely on."""
    d, ell, p = 20, 2, F.p
    assert 2 * d * ell / p < 1e-16
