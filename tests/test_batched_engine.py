"""The differential + adversarial harness behind the batched engine.

The generic :class:`~repro.core.multiquery.BatchedSumcheckEngine` changes
prover hot paths without being allowed to change a single transcript
byte, so this suite is the engine's spec:

* *differential* — hypothesis-driven property tests assert that every
  member of a heterogeneous F2/Fk/INNER-PRODUCT/RANGE-SUM batch produces
  a transcript byte-identical to the corresponding standalone one-query
  run (same verifier point, same challenges), on both the scalar and the
  vectorized backend, including the empty-batch and single-query
  degenerate paths;
* *adversarial* — a prover cheating on exactly one query inside a mixed
  batch is rejected for that query while the honest members of the same
  batch still verify (the Section 7 direct-sum guarantee, per query).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.cheating_provers import PerQueryCheatingBatchEngine
from repro.comm.channel import Channel
from repro.core.f2 import F2Prover, F2Verifier, run_f2
from repro.core.fk import FkProver, FkVerifier, run_fk
from repro.core.inner_product import (
    InnerProductProver,
    InnerProductVerifier,
    run_inner_product,
)
from repro.core.multiquery import (
    BATCH_KIND_F2,
    BATCH_KIND_FK,
    BATCH_KIND_INNER_PRODUCT,
    BATCH_KIND_RANGE_SUM,
    BatchQuery,
    BatchRangeSumProver,
    BatchedSumcheckEngine,
    BatchedSumcheckVerifier,
    batch_f2,
    batch_fk,
    batch_inner_product,
    batch_range_sum,
    run_batch_range_sum,
    run_batched_sumcheck,
)
from repro.core.range_sum import RangeSumProver, RangeSumVerifier, run_range_sum
from repro.field.modular import DEFAULT_FIELD
from repro.field.vectorized import HAVE_NUMPY, get_backend

F = DEFAULT_FIELD

BACKENDS = ["scalar"] + (["vectorized"] if HAVE_NUMPY else [])


# -- strategies ----------------------------------------------------------------


def updates_strategy(u, max_size=25):
    return st.lists(
        st.tuples(st.integers(0, u - 1), st.integers(-3, 5)),
        max_size=max_size,
    )


def query_strategy(u):
    ranges = st.tuples(st.integers(0, u - 1), st.integers(0, u - 1)).map(
        lambda pair: batch_range_sum(min(pair), max(pair))
    )
    return st.one_of(
        st.just(batch_f2()),
        st.integers(1, 4).map(batch_fk),
        st.just(batch_inner_product()),
        ranges,
    )


def batch_case():
    """(u, updates_a, updates_b, queries, point seed) tuples."""
    return st.integers(3, 6).flatmap(
        lambda log_u: st.tuples(
            st.just(1 << log_u),
            updates_strategy(1 << log_u),
            updates_strategy(1 << log_u, max_size=12),
            st.lists(query_strategy(1 << log_u), min_size=1, max_size=6),
            st.integers(0, 2**32),
        )
    )


# -- harness helpers -----------------------------------------------------------


def build_batch_session(backend_name, u, updates_a, updates_b, point,
                        range_fold=None):
    backend = get_backend(F, backend_name)
    engine = BatchedSumcheckEngine(F, u, backend=backend,
                                   range_fold=range_fold)
    verifier = BatchedSumcheckVerifier(F, u, point=point)
    for i, delta in updates_a:
        engine.process(i, delta)
        verifier.process_a(i, delta)
    for i, delta in updates_b:
        engine.process_b(i, delta)
        verifier.process_b(i, delta)
    return engine, verifier, backend


def run_standalone(query, backend_name, u, updates_a, updates_b, point):
    """The corresponding one-query protocol run, same point/challenges."""
    backend = get_backend(F, backend_name)
    channel = Channel()
    if query.kind == BATCH_KIND_F2:
        prover = F2Prover(F, u, backend=backend)
        verifier = F2Verifier(F, u, point=point)
        for i, delta in updates_a:
            prover.process(i, delta)
            verifier.process(i, delta)
        return run_f2(prover, verifier, channel), channel
    if query.kind == BATCH_KIND_FK:
        prover = FkProver(F, u, query.params[0], backend=backend)
        verifier = FkVerifier(F, u, query.params[0], point=point)
        for i, delta in updates_a:
            prover.process(i, delta)
            verifier.process(i, delta)
        return run_fk(prover, verifier, channel), channel
    if query.kind == BATCH_KIND_INNER_PRODUCT:
        prover = InnerProductProver(F, u, backend=backend)
        verifier = InnerProductVerifier(F, u, point=point)
        for i, delta in updates_a:
            prover.process_a(i, delta)
            verifier.process_a(i, delta)
        for i, delta in updates_b:
            prover.process_b(i, delta)
            verifier.process_b(i, delta)
        return run_inner_product(prover, verifier, channel), channel
    prover = RangeSumProver(F, u, backend=backend)
    verifier = RangeSumVerifier(F, u, point=point)
    for i, delta in updates_a:
        prover.process(i, delta)
        verifier.process(i, delta)
    lo, hi = query.params
    return run_range_sum(prover, verifier, lo, hi, channel), channel


def per_query_view(channel, idx):
    """One batch member's transcript, normalized to standalone labels.

    Keeps the member's own messages (``q{idx}-range`` -> ``query``,
    ``q{idx}-g{j}`` -> ``g{j}``) and the shared revealed challenges, in
    transcript order — exactly the sequence a standalone run of that
    query produces.
    """
    prefix = "q%d" % idx
    view = []
    for message in channel.transcript.messages:
        label = message.label
        if "-" in label:
            own, rest = label.split("-", 1)
            if own != prefix:
                continue
            label = "query" if rest == "range" else rest
        elif not label.startswith("r"):
            continue
        view.append((message.sender, label, message.payload))
    return view


def standalone_view(channel):
    return [
        (m.sender, m.label, m.payload) for m in channel.transcript.messages
    ]


def true_answers(u, updates_a, updates_b, queries):
    size = 1 << (u - 1).bit_length() if u > 1 else 1
    freq_a = [0] * size
    for i, delta in updates_a:
        freq_a[i] += delta
    freq_b = [0] * size
    for i, delta in updates_b:
        freq_b[i] += delta
    p = F.p
    out = []
    for q in queries:
        if q.kind == BATCH_KIND_F2:
            out.append(sum(v * v for v in freq_a) % p)
        elif q.kind == BATCH_KIND_FK:
            out.append(sum(v ** q.params[0] for v in freq_a) % p)
        elif q.kind == BATCH_KIND_INNER_PRODUCT:
            out.append(sum(x * y for x, y in zip(freq_a, freq_b)) % p)
        else:
            lo, hi = q.params
            out.append(sum(freq_a[lo : hi + 1]) % p)
    return out


# -- differential property tests -----------------------------------------------


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=batch_case())
def test_batched_transcripts_byte_identical_to_standalone(backend_name, case):
    """Every batch member's messages are byte-for-byte the standalone
    run's messages, its result identical, and its per-query channel cost
    exactly what the standalone run pays."""
    u, updates_a, updates_b, queries, seed = case
    d = (u - 1).bit_length()
    point = F.rand_vector(random.Random(seed), d)

    engine, verifier, backend = build_batch_session(
        backend_name, u, updates_a, updates_b, point
    )
    channel = Channel()
    results = run_batched_sumcheck(engine, verifier, queries, channel,
                                   backend=backend)
    assert len(results) == len(queries)
    expected = true_answers(u, updates_a, updates_b, queries)
    for idx, (query, result) in enumerate(zip(queries, results)):
        assert result.accepted, (query.name, result.reason)
        assert result.value == expected[idx]
        single_result, single_channel = run_standalone(
            query, backend_name, u, updates_a, updates_b, point
        )
        assert single_result.accepted
        assert single_result.value == result.value
        # Byte-identical per-query transcript...
        assert per_query_view(channel, idx) == \
            standalone_view(single_channel), query.name
        # ...and cost accounting to the word: own messages plus the
        # shared challenges the standalone run would repay.
        assert channel.query_cost(idx) == \
            single_channel.transcript.total_words


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs both backends")
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=batch_case())
def test_batched_transcripts_identical_across_backends(case):
    u, updates_a, updates_b, queries, seed = case
    d = (u - 1).bit_length()
    point = F.rand_vector(random.Random(seed), d)
    transcripts = {}
    values = {}
    for backend_name in ("scalar", "vectorized"):
        engine, verifier, backend = build_batch_session(
            backend_name, u, updates_a, updates_b, point
        )
        channel = Channel()
        results = run_batched_sumcheck(engine, verifier, queries, channel,
                                       backend=backend)
        transcripts[backend_name] = channel.transcript.messages
        values[backend_name] = [r.value for r in results]
    assert transcripts["scalar"] == transcripts["vectorized"]
    assert values["scalar"] == values["vectorized"]


# -- dyadic vs dense indicator folds -------------------------------------------
#
# The structured dyadic RANGE-SUM representation (O(log u) canonical
# nodes per query) must be *indistinguishable on the wire* from the
# dense Q×u indicator stack it replaced — the dense path stays behind
# REPRO_RANGE_FOLD=dense exactly so these tests can keep pinning it.


def range_mix_strategy(u):
    """RANGE-SUM-heavy batches biased toward adversarial range shapes."""
    specials = [(0, 0), (u - 1, u - 1), (0, u - 1)]
    if u >= 4:
        specials.append((u // 4, u // 2 - 1))  # power-of-two aligned
        specials.append((1, u - 2))  # maximally unaligned
    ranges = st.one_of(
        st.sampled_from(specials),
        st.tuples(st.integers(0, u - 1), st.integers(0, u - 1)).map(
            lambda pair: (min(pair), max(pair))
        ),
    ).map(lambda pair: batch_range_sum(*pair))
    other = st.one_of(st.just(batch_f2()), st.integers(1, 3).map(batch_fk))
    return st.lists(
        st.one_of(ranges, ranges, ranges, other), min_size=1, max_size=8
    )


def dyadic_dense_case():
    return st.integers(3, 7).flatmap(
        lambda log_u: st.tuples(
            st.just(1 << log_u),
            updates_strategy(1 << log_u, max_size=30),
            range_mix_strategy(1 << log_u),
            st.integers(0, 2**32),
        )
    )


def _run_fold_mode(backend_name, u, updates_a, queries, point, range_fold):
    engine, verifier, backend = build_batch_session(
        backend_name, u, updates_a, [], point, range_fold=range_fold
    )
    channel = Channel()
    results = run_batched_sumcheck(engine, verifier, queries, channel,
                                   backend=backend)
    return results, channel


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=dyadic_dense_case())
def test_dyadic_fold_transcripts_byte_identical_to_dense(backend_name, case):
    """Dyadic and dense indicator representations commit identical round
    messages — whole transcripts byte-for-byte, results equal — across
    random (lo, hi) mixes, on either backend."""
    u, updates_a, queries, seed = case
    d = (u - 1).bit_length()
    point = F.rand_vector(random.Random(seed), d)
    dyadic, ch_dyadic = _run_fold_mode(
        backend_name, u, updates_a, queries, point, "dyadic"
    )
    dense, ch_dense = _run_fold_mode(
        backend_name, u, updates_a, queries, point, "dense"
    )
    assert ch_dyadic.transcript.messages == ch_dense.transcript.messages
    assert [r.value for r in dyadic] == [r.value for r in dense]
    assert all(r.accepted for r in dyadic)
    # ...and both agree with the standalone scalar reference runs.
    for idx, query in enumerate(queries):
        single_result, single_channel = run_standalone(
            query, "scalar", u, updates_a, [], point
        )
        assert single_result.accepted
        assert single_result.value == dyadic[idx].value
        assert per_query_view(ch_dyadic, idx) == \
            standalone_view(single_channel), query.name


EDGE_RANGE_CASES = [
    ("single-key-low", lambda u: (0, 0)),
    ("single-key-high", lambda u: (u - 1, u - 1)),
    ("single-key-inner", lambda u: (u // 2 - 1, u // 2 - 1)),
    ("full-range", lambda u: (0, u - 1)),
    ("pow2-aligned-block", lambda u: (u // 4, u // 2 - 1)),
    ("half-open-top", lambda u: (u // 2, u - 1)),
    ("maximally-unaligned", lambda u: (1, u - 2)),
]


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("name,make_range", EDGE_RANGE_CASES,
                         ids=[n for n, _ in EDGE_RANGE_CASES])
def test_dyadic_fold_edge_ranges_match_dense_and_standalone(
    backend_name, name, make_range
):
    u = 64
    lo, hi = make_range(u)
    rng = random.Random(11)
    updates_a = [(rng.randrange(u), rng.randrange(-2, 6)) for _ in range(70)]
    point = F.rand_vector(random.Random(12), 6)
    queries = [batch_range_sum(lo, hi), batch_f2()]
    dyadic, ch_dyadic = _run_fold_mode(
        backend_name, u, updates_a, queries, point, "dyadic"
    )
    dense, ch_dense = _run_fold_mode(
        backend_name, u, updates_a, queries, point, "dense"
    )
    assert ch_dyadic.transcript.messages == ch_dense.transcript.messages
    assert all(r.accepted for r in dyadic)
    assert [r.value for r in dyadic] == [r.value for r in dense]
    single_result, single_channel = run_standalone(
        queries[0], "scalar", u, updates_a, [], point
    )
    assert single_result.accepted
    assert per_query_view(ch_dyadic, 0) == standalone_view(single_channel)


def test_range_fold_env_knob_selects_representation(monkeypatch):
    """REPRO_RANGE_FOLD drives the engine-internal representation (the
    constructor argument wins over the env); bad values are rejected."""
    from repro.core.multiquery import range_fold_mode

    monkeypatch.delenv("REPRO_RANGE_FOLD", raising=False)
    assert range_fold_mode() == "dyadic"
    monkeypatch.setenv("REPRO_RANGE_FOLD", "dense")
    assert range_fold_mode() == "dense"
    engine = BatchedSumcheckEngine(F, 16)
    engine.receive_batch([batch_range_sum(2, 9)])
    assert engine._dyadic is None  # env said dense
    forced = BatchedSumcheckEngine(F, 16, range_fold="dyadic")
    forced.receive_batch([batch_range_sum(2, 9)])
    assert forced._dyadic is not None  # argument beats the env
    monkeypatch.setenv("REPRO_RANGE_FOLD", "nonsense")
    with pytest.raises(ValueError, match="range fold"):
        BatchedSumcheckEngine(F, 16).receive_batch([batch_range_sum(0, 3)])
    with pytest.raises(ValueError):
        BatchedSumcheckEngine(F, 16, range_fold="nonsense")


def test_wrapping_a_range_sum_prover_snapshots_its_vector():
    """Regression: from_range_sum_prover used to alias the wrapped
    prover's freq_a by reference, so updates streamed into the original
    prover after wrapping silently mutated the engine's table."""
    u = 32
    prover = RangeSumProver(F, u)
    prover.process_stream([(1, 4), (7, 2), (20, 1)])
    engine = BatchRangeSumProver.from_range_sum_prover(prover)
    assert engine.true_answer(0, u - 1) == 7
    # The wrapped prover keeps streaming: the engine must not see it...
    prover.process(7, 10)
    assert engine.true_answer(0, u - 1) == 7
    # ...and the engine's own updates must not leak back.
    engine.process(2, 5)
    assert prover.freq_a[2] == 0


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_empty_batch_is_a_no_op(backend_name):
    engine, verifier, backend = build_batch_session(
        backend_name, 16, [(3, 2)], [], F.rand_vector(random.Random(0), 4)
    )
    channel = Channel()
    assert run_batched_sumcheck(engine, verifier, [], channel,
                                backend=backend) == []
    assert len(channel.transcript) == 0  # nothing hit the wire


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("query", [
    batch_f2(), batch_fk(3), batch_inner_product(), batch_range_sum(2, 11),
], ids=lambda q: q.name)
def test_single_query_batch_matches_standalone(backend_name, query):
    u = 32
    rng = random.Random(5)
    updates_a = [(rng.randrange(u), rng.randrange(-2, 5)) for _ in range(40)]
    updates_b = [(rng.randrange(u), rng.randrange(3)) for _ in range(20)]
    point = F.rand_vector(random.Random(6), 5)
    engine, verifier, backend = build_batch_session(
        backend_name, u, updates_a, updates_b, point
    )
    channel = Channel()
    result = run_batched_sumcheck(engine, verifier, [query], channel,
                                  backend=backend)[0]
    single_result, single_channel = run_standalone(
        query, backend_name, u, updates_a, updates_b, point
    )
    assert result.accepted and single_result.accepted
    assert result.value == single_result.value
    assert per_query_view(channel, 0) == standalone_view(single_channel)


def test_wrapped_range_sum_path_unchanged():
    """run_batch_range_sum still wraps a plain RangeSumProver onto the
    engine, with the original transcript shape."""
    u = 64
    rng = random.Random(9)
    updates = [(rng.randrange(u), rng.randrange(1, 5)) for _ in range(50)]
    point = F.rand_vector(random.Random(10), 6)
    prover = RangeSumProver(F, u)
    verifier = RangeSumVerifier(F, u, point=point)
    for i, delta in updates:
        prover.process(i, delta)
        verifier.process(i, delta)
    channel = Channel()
    results = run_batch_range_sum(prover, verifier, [(0, 9), (10, 63)],
                                  channel)
    assert all(r.accepted for r in results)

    engine = BatchRangeSumProver(F, u)
    engine.process_stream(updates)
    verifier2 = RangeSumVerifier(F, u, point=point)
    verifier2.process_stream(updates)
    channel2 = Channel()
    direct = run_batched_sumcheck(
        engine, verifier2, [batch_range_sum(0, 9), batch_range_sum(10, 63)],
        channel2,
    )
    assert channel.transcript.messages == channel2.transcript.messages
    assert [r.value for r in results] == [r.value for r in direct]


# -- validation ----------------------------------------------------------------


def test_batch_query_validation_and_words():
    with pytest.raises(ValueError):
        BatchQuery(99, ())
    with pytest.raises(ValueError):
        batch_fk(0)
    with pytest.raises(ValueError):
        batch_range_sum(5, 4)
    with pytest.raises(ValueError):
        BatchQuery(BATCH_KIND_F2, (1,))
    queries = [batch_f2(), batch_fk(3), batch_inner_product(),
               batch_range_sum(2, 9)]
    words = []
    for q in queries:
        words.extend(q.to_words())
    assert BatchQuery.parse_many(words) == queries
    with pytest.raises(ValueError):
        BatchQuery.parse_many(words[:-1])  # truncated params
    assert queries[1].degree == 3 and queries[3].degree == 2


def test_engine_validates_usage():
    engine = BatchedSumcheckEngine(F, 64)
    with pytest.raises(RuntimeError):
        engine.round_messages()
    with pytest.raises(RuntimeError):
        engine.receive_challenge(3)
    with pytest.raises(ValueError):
        engine.receive_batch([batch_range_sum(5, 90)])  # beyond the padding
    with pytest.raises(TypeError):
        engine.receive_batch([(0, 5)])  # not a BatchQuery
    with pytest.raises(ValueError):
        engine.process(64, 1)
    with pytest.raises(ValueError):
        engine.process_b(64, 1)


def test_driver_requires_two_lde_verifier_for_inner_product():
    engine = BatchedSumcheckEngine(F, 16)
    verifier = RangeSumVerifier(F, 16, rng=random.Random(3))
    with pytest.raises(ValueError, match="second-stream"):
        run_batched_sumcheck(engine, verifier, [batch_inner_product()])
    # F2/Fk/RANGE-SUM batches run fine on a single-LDE verifier.
    results = run_batched_sumcheck(
        engine, verifier, [batch_f2(), batch_range_sum(0, 15)]
    )
    assert all(r.accepted for r in results)


# -- adversarial: one cheater inside a mixed batch -----------------------------


MIXED_QUERIES = [batch_range_sum(0, 20), batch_f2(), batch_fk(3),
                 batch_inner_product(), batch_range_sum(30, 50)]


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("style", ["claim", "adaptive"])
@pytest.mark.parametrize("victim", range(len(MIXED_QUERIES)))
def test_single_cheating_query_rejected_alone(backend_name, style, victim):
    u = 64
    rng = random.Random(20 + victim)
    updates_a = [(rng.randrange(u), rng.randrange(1, 6)) for _ in range(60)]
    updates_b = [(rng.randrange(u), rng.randrange(1, 4)) for _ in range(30)]
    backend = get_backend(F, backend_name)
    engine = PerQueryCheatingBatchEngine(F, u, cheat_query=victim,
                                         offset=7, style=style,
                                         backend=backend)
    verifier = BatchedSumcheckVerifier(F, u, rng=random.Random(40 + victim))
    for i, delta in updates_a:
        engine.process(i, delta)
        verifier.process_a(i, delta)
    for i, delta in updates_b:
        engine.process_b(i, delta)
        verifier.process_b(i, delta)
    results = run_batched_sumcheck(engine, verifier, MIXED_QUERIES)
    expected = true_answers(u, updates_a, updates_b, MIXED_QUERIES)
    for idx, result in enumerate(results):
        if idx == victim:
            assert not result.accepted
            if style == "claim":
                assert "invariant" in result.reason
            else:
                assert "final check" in result.reason
        else:
            assert result.accepted, (idx, result.reason)
            assert result.value == expected[idx]


def test_cheating_engine_validates_victim_index():
    engine = PerQueryCheatingBatchEngine(F, 16, cheat_query=3)
    with pytest.raises(ValueError):
        engine.receive_batch([batch_f2()])
    with pytest.raises(ValueError):
        PerQueryCheatingBatchEngine(F, 16, style="nonsense")
