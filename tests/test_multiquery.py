"""Tests for multiple-query support (Section 7, "Multiple Queries")."""

from __future__ import annotations

import random

import pytest

from repro.comm.channel import Channel, flip_word
from repro.core.f2 import F2Verifier
from repro.core.multiquery import (
    BatchRangeSumProver,
    IndependentCopies,
    run_batch_range_sum,
)
from repro.core.range_sum import RangeSumProver, RangeSumVerifier
from repro.field.modular import DEFAULT_FIELD
from repro.streams.generators import uniform_frequency_stream
from repro.streams.model import Stream

F = DEFAULT_FIELD


def batch_session(stream, seed=0):
    verifier = RangeSumVerifier(F, stream.u, rng=random.Random(seed))
    prover = RangeSumProver(F, stream.u)
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process_a(i, delta)
    return prover, verifier


def test_batch_all_queries_verified():
    stream = uniform_frequency_stream(64, max_frequency=9,
                                      rng=random.Random(1))
    queries = [(0, 10), (5, 40), (63, 63), (0, 63)]
    prover, verifier = batch_session(stream)
    results = run_batch_range_sum(prover, verifier, queries)
    assert len(results) == 4
    for (lo, hi), result in zip(queries, results):
        assert result.accepted
        assert result.value == stream.range_sum(lo, hi) % F.p


def test_batch_engine_prover_matches_wrapped_run():
    """Driving a streamed BatchRangeSumProver directly produces the same
    transcript as wrapping a RangeSumProver — the seam the service's
    remote proxy stands behind."""
    stream = uniform_frequency_stream(64, max_frequency=9,
                                      rng=random.Random(4))
    queries = [(0, 10), (5, 40), (63, 63)]
    prover, verifier = batch_session(stream, seed=9)
    ch_wrapped = Channel()
    wrapped = run_batch_range_sum(prover, verifier, queries, ch_wrapped)

    engine = BatchRangeSumProver(F, stream.u)
    engine.process_stream(stream.updates())
    verifier2 = RangeSumVerifier(F, stream.u, rng=random.Random(9))
    verifier2.process_stream(stream.updates())
    ch_engine = Channel()
    direct = run_batch_range_sum(engine, verifier2, queries, ch_engine)

    assert ch_wrapped.transcript.messages == ch_engine.transcript.messages
    assert [r.accepted for r in wrapped] == [r.accepted for r in direct]
    assert [r.value for r in wrapped] == [r.value for r in direct]


def test_batch_engine_validates_usage():
    engine = BatchRangeSumProver(F, 64)
    with pytest.raises(RuntimeError):
        engine.round_messages()
    with pytest.raises(RuntimeError):
        engine.receive_challenge(3)
    with pytest.raises(ValueError):
        engine.receive_queries([(5, 90)])
    with pytest.raises(ValueError):
        engine.process(64, 1)


def test_batch_shares_challenges():
    """Direct-sum: one challenge per round regardless of query count."""
    stream = Stream(64, [(3, 5)])
    prover, verifier = batch_session(stream, seed=2)
    channel = Channel()
    run_batch_range_sum(prover, verifier, [(0, 7), (8, 15), (16, 31)],
                        channel)
    challenge_words = sum(
        m.payload_words
        for m in channel.transcript.messages_from("verifier")
        if m.label.startswith("r")
    )
    assert challenge_words == verifier.d - 1  # shared across all queries


def test_batch_communication_scales_with_queries():
    stream = Stream(64, [(3, 5)])
    words = {}
    for count in (1, 4):
        prover, verifier = batch_session(stream, seed=3)
        channel = Channel()
        run_batch_range_sum(prover, verifier,
                            [(i, i + 8) for i in range(count)], channel)
        words[count] = channel.transcript.prover_words
    assert words[4] == 4 * words[1]


def test_batch_single_tampered_query_fails_alone():
    """Tampering one query's messages must not sink the others."""
    stream = uniform_frequency_stream(64, max_frequency=5,
                                      rng=random.Random(4))
    queries = [(0, 20), (30, 50)]
    prover, verifier = batch_session(stream, seed=5)

    def tamper(message):
        if message.label.startswith("q1-"):
            payload = list(message.payload)
            payload[0] += 1
            return payload
        return message.payload

    results = run_batch_range_sum(prover, verifier, queries,
                                  Channel(tamper=tamper))
    assert results[0].accepted
    assert not results[1].accepted


def test_batch_validates_ranges():
    stream = Stream(16, [(0, 1)])
    prover, verifier = batch_session(stream)
    with pytest.raises(ValueError):
        run_batch_range_sum(prover, verifier, [(5, 4)])


def test_independent_copies_lifecycle():
    stream = uniform_frequency_stream(32, max_frequency=4,
                                      rng=random.Random(6))
    copies = IndependentCopies(
        3,
        lambda rng: F2Verifier(F, 32, rng=rng),
        rng=random.Random(7),
    )
    copies.process_stream(stream.updates())
    assert copies.remaining == 3
    seen_points = []
    for _ in range(3):
        verifier = copies.take()
        seen_points.append(tuple(verifier.r))
    assert copies.remaining == 0
    # Copies carry independent randomness.
    assert len(set(seen_points)) == 3
    with pytest.raises(LookupError):
        copies.take()


def test_independent_copies_usable_for_repeated_queries():
    from repro.core.f2 import F2Prover, run_f2

    stream = uniform_frequency_stream(32, max_frequency=4,
                                      rng=random.Random(8))
    copies = IndependentCopies(
        2,
        lambda rng: F2Verifier(F, 32, rng=rng),
        rng=random.Random(9),
    )
    prover = F2Prover(F, 32)
    for i, d in stream.updates():
        copies.process(i, d)
        prover.process(i, d)
    for _ in range(2):
        result = run_f2(prover, copies.take())
        assert result.accepted
        assert result.value == stream.self_join_size() % F.p


def test_independent_copies_space_scales():
    copies = IndependentCopies(
        4,
        lambda rng: F2Verifier(F, 1024, rng=rng),
        rng=random.Random(10),
    )
    single = F2Verifier(F, 1024, rng=random.Random(11))
    assert copies.space_words == 4 * single.space_words


def test_independent_copies_validates_count():
    with pytest.raises(ValueError):
        IndependentCopies(0, lambda rng: None)


# -- error amplification (Definition 1 remark) ---------------------------------


def _f2_run_once_factory(stream, prover_cls):
    from repro.core.f2 import run_f2

    def run_once(rng):
        from repro.core.f2 import F2Verifier

        verifier = F2Verifier(F, stream.u, rng=rng)
        prover = prover_cls(F, stream.u)
        for i, d in stream.updates():
            verifier.process(i, d)
            prover.process(i, d)
        return run_f2(prover, verifier)

    return run_once


def test_amplified_honest_accepted():
    from repro.core.f2 import F2Prover
    from repro.core.multiquery import amplified_protocol

    stream = uniform_frequency_stream(32, max_frequency=5,
                                      rng=random.Random(20))
    result = amplified_protocol(
        _f2_run_once_factory(stream, F2Prover), 3, random.Random(21)
    )
    assert result.accepted
    assert result.value == stream.self_join_size() % F.p
    # Costs add linearly: 3 instances of a 5-round protocol.
    assert result.transcript.total_words == 3 * (3 * 5 + 4)


def test_amplified_rejects_on_any_rejection():
    from repro.adversary import ModifiedStreamF2Prover
    from repro.core.multiquery import amplified_protocol

    stream = uniform_frequency_stream(32, max_frequency=5,
                                      rng=random.Random(22))

    def prover_cls(field, u):
        return ModifiedStreamF2Prover(field, u, corrupt_key=1)

    result = amplified_protocol(
        _f2_run_once_factory(stream, prover_cls), 3, random.Random(23)
    )
    assert not result.accepted
    assert "repetition rejected" in result.reason


def test_amplified_error_compounds():
    """Over Z_101 one repetition escapes measurably; three repetitions
    (reject-if-any-rejects) should essentially never escape."""
    from repro.core.multiquery import amplified_protocol
    from repro.adversary import ModifiedStreamF2Prover
    from repro.core.f2 import F2Verifier, run_f2
    from repro.field.modular import PrimeField
    from repro.streams.model import Stream

    tiny = PrimeField(101)
    stream = Stream.from_items(8, [1, 3, 3])

    def run_once(rng):
        verifier = F2Verifier(tiny, 8, rng=rng)
        prover = ModifiedStreamF2Prover(tiny, 8, corrupt_key=1)
        for i, d in stream.updates():
            verifier.process(i, d)
            prover.process(i, d)
        return run_f2(prover, verifier)

    master = random.Random(24)
    escapes = sum(
        amplified_protocol(run_once, 3, master).accepted
        for _ in range(120)
    )
    # Single-run escape rate is ~0.1; cubed it is ~1e-3.
    assert escapes <= 2


def test_amplified_validates_repetitions():
    from repro.core.multiquery import amplified_protocol

    with pytest.raises(ValueError):
        amplified_protocol(lambda rng: None, 0)


# -- batched-path satellites ---------------------------------------------------


def test_batch_empty_queries_returns_empty():
    stream = Stream(16, [(0, 1)])
    prover, verifier = batch_session(stream)
    channel = Channel()
    assert run_batch_range_sum(prover, verifier, [], channel) == []
    assert len(channel.transcript) == 0  # nothing hit the wire


def test_batch_per_query_accounting_comparable_to_independent():
    """query_cost(q) = own messages + shared challenges — the figure an
    independent single-query run would pay for its prover+challenge words."""
    from repro.core.range_sum import run_range_sum

    stream = uniform_frequency_stream(64, max_frequency=9,
                                      rng=random.Random(30))
    queries = [(0, 10), (20, 50), (63, 63)]
    prover, verifier = batch_session(stream, seed=31)
    channel = Channel()
    results = run_batch_range_sum(prover, verifier, queries, channel)
    assert all(r.accepted for r in results)
    # Every query was charged the same number of its own words: the
    # 2-word range announcement plus one 3-word polynomial per round.
    assert set(channel.query_words) == {0, 1, 2}
    assert len(set(channel.query_words.values())) == 1
    per_query = channel.query_words[0]
    assert per_query == 2 + 3 * verifier.d
    # Shared words: the d-1 revealed challenges, once for the batch.
    assert channel.shared_words == verifier.d - 1
    assert channel.query_cost(1) == per_query + channel.shared_words
    # The per-query figure matches an independent run of the same query
    # exactly: query + prover polynomials + revealed challenges.
    single_prover, single_verifier = batch_session(stream, seed=32)
    single_channel = Channel()
    run_range_sum(single_prover, single_verifier, 20, 50, single_channel)
    assert single_channel.transcript.total_words == channel.query_cost(1)


def test_independent_copies_batched_matches_loop():
    stream = uniform_frequency_stream(48, max_frequency=6,
                                      rng=random.Random(33))
    updates = list(stream.updates())
    loop = IndependentCopies(3, lambda rng: F2Verifier(F, 48, rng=rng),
                             rng=random.Random(34))
    batched = IndependentCopies(3, lambda rng: F2Verifier(F, 48, rng=rng),
                                rng=random.Random(34))
    loop.process_stream(updates)
    batched.process_stream_batched(updates, block=7)
    for _ in range(3):
        a = loop.take()
        b = batched.take()
        assert a.r == b.r
        assert a.lde.value == b.lde.value


def test_independent_copies_batched_validates_universe():
    copies = IndependentCopies(2, lambda rng: F2Verifier(F, 40, rng=rng),
                               rng=random.Random(35))
    with pytest.raises(ValueError):
        copies.process_stream_batched([(0, 1), (40, 2)])
    with pytest.raises(ValueError):
        copies.process_stream_batched([(0, 1)], block=0)


def test_independent_copies_batched_falls_back_without_lde():
    class Counter:
        def __init__(self):
            self.total = 0

        def process(self, i, delta):
            self.total += delta

    copies = IndependentCopies(2, lambda rng: Counter(),
                               rng=random.Random(36))
    copies.process_stream_batched([(0, 1), (1, 2)])
    assert all(v.total == 3 for v in copies._fresh)


def test_independent_copies_batched_preserves_non_lde_state():
    """Verifiers with streaming state beyond .lde (no STREAM_STATE_IS_LDE
    opt-in) must take the per-update fallback, not lose their sketches."""
    from repro.core.frequency_based import FrequencyBasedVerifier

    stream = uniform_frequency_stream(32, max_frequency=4,
                                      rng=random.Random(50))
    updates = list(stream.updates())
    loop = IndependentCopies(
        2, lambda rng: FrequencyBasedVerifier(F, 32, 0.2, rng=rng),
        rng=random.Random(51),
    )
    batched = IndependentCopies(
        2, lambda rng: FrequencyBasedVerifier(F, 32, 0.2, rng=rng),
        rng=random.Random(51),
    )
    loop.process_stream(updates)
    batched.process_stream_batched(updates)
    for a, b in zip(loop._fresh, batched._fresh):
        assert a.lde.value == b.lde.value
        assert a.hh.n == b.hh.n  # the heavy-hitters sketch streamed too
        assert b.hh.n == sum(d for _, d in updates)
