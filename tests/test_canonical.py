"""Tests for repro.lde.canonical — dyadic covers and the O(log² u)
range-indicator LDE evaluation of Section 3.2."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.modular import DEFAULT_FIELD
from repro.lde.canonical import (
    cover_is_partition,
    dyadic_cover,
    node_range,
    range_indicator_eval,
)
from repro.lde.streaming import StreamingLDE

F = DEFAULT_FIELD

ranges_64 = st.tuples(
    st.integers(min_value=0, max_value=63),
    st.integers(min_value=0, max_value=63),
).map(lambda t: (min(t), max(t)))


@given(ranges_64)
def test_cover_partitions_range(bounds):
    lo, hi = bounds
    cover = dyadic_cover(lo, hi)
    assert cover_is_partition(cover, lo, hi)


@given(ranges_64)
def test_cover_nodes_are_aligned_and_maximal(bounds):
    lo, hi = bounds
    cover = dyadic_cover(lo, hi)
    for level, index in cover:
        nlo, nhi = node_range((level, index))
        assert nlo % (1 << level) == 0
        assert lo <= nlo and nhi <= hi
    # At most two nodes per level (the classic dyadic bound).
    per_level = {}
    for level, _ in cover:
        per_level[level] = per_level.get(level, 0) + 1
    assert all(count <= 2 for count in per_level.values())


@given(ranges_64)
def test_cover_size_logarithmic(bounds):
    lo, hi = bounds
    cover = dyadic_cover(lo, hi)
    length = hi - lo + 1
    assert len(cover) <= 2 * (length.bit_length() + 1)


def test_single_point_cover():
    assert dyadic_cover(5, 5) == [(0, 5)]


def test_full_range_cover_is_root():
    assert dyadic_cover(0, 63) == [(6, 0)]


def test_cover_empty_range_rejected():
    with pytest.raises(ValueError):
        dyadic_cover(5, 4)


def test_cover_negative_rejected():
    with pytest.raises(ValueError):
        dyadic_cover(-1, 4)


def test_node_range():
    assert node_range((0, 9)) == (9, 9)
    assert node_range((3, 2)) == (16, 23)


def test_cover_is_partition_detects_gap():
    assert not cover_is_partition([(0, 1), (0, 3)], 1, 3)
    assert not cover_is_partition([(0, 1)], 1, 2)


@given(ranges_64)
def test_indicator_eval_matches_direct_lde(bounds):
    """The O(log² u) formula equals the LDE of the explicit 0/1 vector."""
    lo, hi = bounds
    rng = random.Random(lo * 64 + hi)
    point = F.rand_vector(rng, 6)
    b = [1 if lo <= i <= hi else 0 for i in range(64)]
    expected = StreamingLDE.direct_evaluate(F, b, 2, point)
    assert range_indicator_eval(F, 6, point, lo, hi) == expected


def test_indicator_eval_full_range_is_one():
    # Sum over all chi values is 1 (partition of unity in each variable).
    rng = random.Random(3)
    point = F.rand_vector(rng, 8)
    assert range_indicator_eval(F, 8, point, 0, 255) == 1


def test_indicator_eval_on_boolean_point_is_membership():
    # Evaluating at a grid point recovers the indicator itself.
    for q in range(16):
        bits = [(q >> j) & 1 for j in range(4)]
        inside = range_indicator_eval(F, 4, bits, 3, 9)
        assert inside == (1 if 3 <= q <= 9 else 0)


def test_indicator_eval_validation():
    point = [1, 2, 3]
    with pytest.raises(ValueError):
        range_indicator_eval(F, 3, point, 2, 8)  # hi out of universe
    with pytest.raises(ValueError):
        range_indicator_eval(F, 4, point, 0, 3)  # point dim mismatch


def test_chi_at_is_the_lagrange_basis_factor():
    from repro.lde.canonical import chi_at

    p = F.p
    # On the grid: chi_b(x) is the 0/1 membership indicator.
    assert chi_at(F, 0, 0) == 1 and chi_at(F, 0, 1) == 0
    assert chi_at(F, 1, 0) == 0 and chi_at(F, 1, 1) == 1
    # Off the grid: chi_0(2) = -1, chi_1(2) = 2 (the prover's degree-2
    # probe point), reduced mod p.
    assert chi_at(F, 0, 2) == p - 1
    assert chi_at(F, 1, 2) == 2
    # Partition of unity at any value.
    for v in (0, 1, 2, 12345, p - 1):
        assert (chi_at(F, 0, v) + chi_at(F, 1, v)) % p == 1


@given(ranges_64)
def test_node_chi_products_sum_to_indicator_eval(bounds):
    """Summing each cover node's chi-product reproduces the range
    indicator LDE — the identity the dyadic prover fold relies on."""
    from repro.lde.canonical import node_chi_product

    lo, hi = bounds
    rng = random.Random(hi * 131 + lo)
    point = F.rand_vector(rng, 6)
    total = 0
    for level, index in dyadic_cover(lo, hi):
        total = (total + node_chi_product(F, index, point[level:])) % F.p
    assert total == range_indicator_eval(F, 6, point, lo, hi)


def test_node_chi_product_on_boolean_coords_is_bit_match():
    from repro.lde.canonical import node_chi_product

    # With 0/1 coords the product is 1 iff the coords spell the index.
    for index in range(8):
        for q in range(8):
            bits = [(q >> j) & 1 for j in range(3)]
            expected = 1 if q == index else 0
            assert node_chi_product(F, index, bits) == expected
