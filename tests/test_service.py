"""Tests for repro.service — the prover-as-a-service subsystem.

Covers the frame protocol, the query router/planner, the session
registry, the full client/server lifecycle over real sockets (connect →
stream → query → verify → reject cheating prover), the worker-pool
execution mode, and the load generator.  The end-to-end demo test at the
bottom is the acceptance scenario: >= 10^5 OutsourcedKVStore updates
streamed over the wire, >= 4 query types verified through the
QueryRouter, with per-query channel/frame costs checked against the
paper's asymptotic bounds.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary.cheating_provers import (
    AdaptiveF2Cheater,
    ConcealingHeavyHittersProver,
    ModifiedStreamF2Prover,
    OmittingSubVectorProver,
)
from repro.comm.channel import Channel, flip_word
from repro.core.base import pow2_dimension
from repro.core.f2 import F2Verifier, run_f2
from repro.distributed.sharded import DistributedF2Prover
from repro.field.modular import DEFAULT_FIELD as F
from repro.field.modular import PrimeField
from repro.field.vectorized import HAVE_NUMPY
from repro.service import protocol as sp
from repro.service import (
    PoolConfigError,
    PooledDistributedF2Prover,
    ProverServer,
    QueryDescriptor,
    QueryRouter,
    RoutingError,
    ServiceClient,
    ServiceClientError,
    f2,
    fk,
    heavy_hitters,
    inner_product,
    k_largest,
    point_lookup,
    predecessor,
    range_scan,
    range_sum,
    run_load,
    successor,
)
from repro.service.registry import Dataset, RegistryError, SessionRegistry
from repro.service.router import KIND_RANGE_SUM, PlanUnit
from repro.streams.generators import key_value_pairs, uniform_frequency_stream
from repro.streams.kvstore import OutsourcedKVStore


# -- shared server fixture -----------------------------------------------------


@pytest.fixture(scope="module")
def server():
    srv = ProverServer(F)
    handle = srv.serve_in_thread()
    yield handle
    handle.stop()


def connect(server, u, dataset_id, seed=0, **kwargs):
    host, port = server.address
    return ServiceClient(host, port, F, u, dataset_id=dataset_id,
                         rng=random.Random(seed), **kwargs)


_DATASET_COUNTER = iter(range(1000, 10_000))


def fresh_dataset_id():
    return next(_DATASET_COUNTER)


# -- frame protocol ------------------------------------------------------------


def test_frame_roundtrip():
    frame = sp.pack_frame(sp.T_UPDATES, 42, b"abc")
    frame_type, session, length = sp.unpack_header(frame[: sp.HEADER_LEN])
    assert (frame_type, session, length) == (sp.T_UPDATES, 42, 3)
    assert frame[sp.HEADER_LEN :] == b"abc"


def test_frame_header_validation():
    good = sp.pack_frame(sp.T_HELLO, 0, b"")[: sp.HEADER_LEN]
    with pytest.raises(sp.ServiceProtocolError):
        sp.unpack_header(good[:-1])
    with pytest.raises(sp.ServiceProtocolError):
        sp.unpack_header(b"XX" + good[2:])
    with pytest.raises(sp.ServiceProtocolError):
        sp.unpack_header(good[:2] + bytes([99]) + good[3:])
    with pytest.raises(sp.ServiceProtocolError):
        sp.unpack_header(good[:3] + bytes([0xEE]) + good[4:])
    huge = bytearray(good)
    huge[8:12] = (sp.MAX_PAYLOAD + 1).to_bytes(4, "big")
    with pytest.raises(sp.ServiceProtocolError):
        sp.unpack_header(bytes(huge))
    with pytest.raises(sp.ServiceProtocolError):
        sp.pack_frame(0xEE, 0, b"")


def test_hello_payload_roundtrip():
    payload = sp.hello_payload(F, 1 << 20, 7)
    assert sp.parse_hello(payload) == (F.p, 1 << 20, 7)
    big = PrimeField((1 << 127) - 1, check_prime=False)
    assert sp.parse_hello(sp.hello_payload(big, 5, 0)) == (big.p, 5, 0)
    with pytest.raises(sp.ServiceProtocolError):
        sp.parse_hello(payload[:-1])
    with pytest.raises(sp.ServiceProtocolError):
        sp.parse_hello(b"")


def test_updates_payload_roundtrip_signed():
    pairs = [(3, 5), (7, -2), (0, -(10**9))]
    vector, decoded = sp.parse_updates(F, sp.updates_payload(F, 0, pairs))
    assert vector == 0 and decoded == pairs
    with pytest.raises(sp.ServiceProtocolError):
        sp.parse_updates(F, sp.words_payload(F, [0, 1]))  # dangling key
    with pytest.raises(sp.ServiceProtocolError):
        sp.parse_updates(F, sp.words_payload(F, [9, 1, 1]))  # bad vector


def test_descriptor_words_roundtrip():
    for q in [point_lookup(5), range_scan(1, 9), range_sum(0, 3), f2(),
              f2(workers=4), fk(3), inner_product(), heavy_hitters(1, 8),
              k_largest(2), predecessor(7), successor(7)]:
        assert QueryDescriptor.from_words(q.to_words()) == q
    with pytest.raises(RoutingError):
        QueryDescriptor.from_words([1, 5, 2])
    with pytest.raises(RoutingError):
        QueryDescriptor(999, ())
    with pytest.raises(RoutingError):
        QueryDescriptor(KIND_RANGE_SUM, (1,))


# -- router / planner ----------------------------------------------------------


def test_plan_batches_the_sumcheck_family():
    # Mixed sum-check kinds share one heterogeneous batched unit drawing
    # from the ("batch",) two-LDE verifier pool.
    queries = [range_sum(0, 5), f2(), range_sum(2, 9), point_lookup(1)]
    units = QueryRouter.plan(queries)
    assert [u.batched for u in units] == [True, False]
    assert units[0].descriptors == (range_sum(0, 5), f2(), range_sum(2, 9))
    assert units[0].pool_key == ("batch",)
    # A homogeneous batch keeps its family pool (and the legacy engine).
    units = QueryRouter.plan([range_sum(0, 5), range_sum(2, 9),
                              k_largest(1)])
    assert [u.batched for u in units] == [True, False]
    assert units[0].pool_key == ("range-sum",)
    # A lone sum-check descriptor stays single-shot...
    units = QueryRouter.plan([range_sum(0, 5), heavy_hitters(1, 8)])
    assert [u.batched for u in units] == [False, False]
    # ...and worker-pool F2 keeps its own prover, outside any batch.
    units = QueryRouter.plan([f2(workers=4), range_sum(0, 5), fk(3)])
    assert [u.batched for u in units] == [False, True]
    assert units[1].descriptors == (range_sum(0, 5), fk(3))


def test_pool_keys_group_the_tree_family():
    tree_kinds = [point_lookup(1), range_scan(0, 3), k_largest(2),
                  predecessor(5), successor(5)]
    keys = {QueryRouter.verifier_pool_key(q) for q in tree_kinds}
    assert keys == {("tree",)}
    assert QueryRouter.verifier_pool_key(fk(3)) == ("fk", 3)
    assert QueryRouter.verifier_pool_key(heavy_hitters(1, 8)) == \
        ("heavy-hitters", 1, 8)


def test_router_runs_every_kind_in_process():
    """The router's factories and drivers work without any sockets."""
    u = 256
    store = OutsourcedKVStore(u)
    pairs = key_value_pairs(u, 40, rng=random.Random(3))
    store.put_many(pairs)
    updates = list(store.updates())
    freq = [0] * (1 << pow2_dimension(u))
    for i, delta in updates:
        freq[i] += delta
    rng = random.Random(9)
    some_key = pairs[0][0]
    queries = [point_lookup(some_key), range_scan(0, u - 1),
               range_sum(0, u // 2), f2(), fk(3), heavy_hitters(1, 4),
               k_largest(1), predecessor(u - 1), successor(0),
               inner_product()]
    for q in queries:
        unit = QueryRouter.plan([q])[0]
        verifier = QueryRouter.make_verifier(
            unit.pool_key, F, u, random.Random(rng.getrandbits(64))
        )
        if unit.pool_key[0] == "inner-product":
            for i, delta in updates:
                verifier.process_a(i, delta)
                verifier.process_b(i, delta)
        else:
            verifier.process_stream(updates)
        prover = QueryRouter.make_prover(unit, F, u, freq, freq)
        result = QueryRouter.run(unit, prover, verifier)
        assert result.accepted, (q.name, result.reason)


def test_router_validates_phi():
    with pytest.raises(RoutingError):
        QueryRouter.make_verifier(("heavy-hitters", 0, 4), F, 16,
                                  random.Random(0))
    with pytest.raises(RoutingError):
        QueryRouter.make_verifier(("heavy-hitters", 5, 4), F, 16,
                                  random.Random(0))


# -- registry ------------------------------------------------------------------


def test_registry_shares_datasets_across_sessions():
    registry = SessionRegistry(F)
    s1 = registry.connect(64, 1)
    s2 = registry.connect(64, 1)
    s3 = registry.connect(128, 2)
    assert s1.dataset is s2.dataset
    assert s1.dataset is not s3.dataset
    assert s1.dataset.sessions_attached == 2
    with pytest.raises(RegistryError):
        registry.connect(32, 1)  # universe mismatch on dataset 1
    registry.disconnect(s2.session_id)
    assert s1.dataset.sessions_attached == 1
    with pytest.raises(RegistryError):
        registry.session(s2.session_id)


def test_registry_dataset_apply_and_replay():
    dataset = Dataset(F, 16, 0)
    dataset.apply(0, [(3, 2), (5, -1)])
    dataset.apply(1, [(1, 4)])
    assert dataset.freq_a[3] == 2 and dataset.freq_a[5] == -1
    assert dataset.freq_b[1] == 4
    assert dataset.n_updates == 3
    assert dataset.replay_slice(1, 10) == [(0, 5, -1), (1, 1, 4)]
    with pytest.raises(RegistryError):
        dataset.apply(0, [(16, 1)])
    # The failed batch applied its valid prefix and logged it.
    with pytest.raises(RegistryError):
        dataset.replay_slice(-1, 5)


def test_registry_query_lifecycle_and_stats():
    registry = SessionRegistry(F)
    session = registry.connect(64, 5)
    unit_desc = [range_sum(0, 9)]
    active = registry.open_query(session.session_id, unit_desc, False)
    assert registry.stats()["open_queries"] == 1
    session.close_query(active.ref)
    assert registry.stats()["open_queries"] == 0
    assert registry.stats()["queries_served"] == 1
    with pytest.raises(RegistryError):
        session.close_query(active.ref)


# -- client/server lifecycle ---------------------------------------------------


def test_session_lifecycle_connect_stream_query_verify(server):
    u = 512
    store = OutsourcedKVStore(u)
    pairs = key_value_pairs(u, 80, rng=random.Random(11))
    store.put_many(pairs)
    client = connect(server, u, fresh_dataset_id(), seed=21)
    with client:
        client.provision(("tree",), 3)
        # range_sum + f2 plan onto one mixed batched unit: one two-LDE
        # verifier copy serves both.
        client.provision(("batch",), 1)
        client.send_updates(list(store.updates()))

        some_key, some_val = pairs[0]
        outcomes = client.query(
            point_lookup(some_key),
            range_sum(0, u - 1),
            f2(),
            predecessor(u - 1),
            successor(0),
        )
        for outcome in outcomes:
            assert outcome.result.accepted, (
                outcome.descriptor.name, outcome.result.reason
            )
        # DICTIONARY decoding happens client-side (+1 shift).
        assert outcomes[0].result.value == some_val + 1
        assert outcomes[1].result.value == store.range_value_sum(0, u - 1) \
            + len(store)  # +1 per present key from the encoding
        # Every query consumed one copy from its pool (the batched unit
        # one copy for both of its members).
        assert client.pool_remaining(("tree",)) == 0
        assert client.pool_remaining(("batch",)) == 0
        # The server counted all four plan units (global counter).
        assert client.stats()["queries_served"] >= 4


def test_field_mismatch_refused(server):
    host, port = server.address
    small = PrimeField((1 << 31) - 1)
    with pytest.raises(ServiceClientError, match="field mismatch"):
        ServiceClient(host, port, small, 64, dataset_id=fresh_dataset_id())


def test_pool_exhaustion_and_missing_pool(server):
    client = connect(server, 64, fresh_dataset_id(), seed=5)
    with client:
        client.provision(("f2",), 1)
        client.send_updates([(1, 2), (5, 3)])
        assert client.query(f2())[0].result.accepted
        with pytest.raises(LookupError):
            client.query(f2())
        with pytest.raises(RoutingError):
            client.query(fk(3))  # never provisioned
        with pytest.raises(ValueError):
            client.provision(("fk", 3), 1)  # too late: stream started


def test_provision_validation(server):
    client = connect(server, 64, fresh_dataset_id(), seed=6)
    with client:
        client.provision(("tree",), 2)
        with pytest.raises(ValueError):
            client.provision(("tree",), 1)  # duplicate pool
        with pytest.raises(ValueError):
            client.provision(("f2",), 0)  # zero copies


def test_server_rejects_bad_requests(server):
    client = connect(server, 64, fresh_dataset_id(), seed=7)
    with client:
        client.provision(("f2",), 1)
        # Updates outside the universe are refused client-side before
        # any pool or frame sees them...
        with pytest.raises(ValueError, match="outside universe"):
            client.send_updates([(64, 1)])
        # ...and the server validates independently: a raw frame with a
        # bad key comes back as an error frame, not a crash.
        with pytest.raises(ServiceClientError, match="outside universe"):
            client._request(
                sp.T_UPDATES, client.session_id,
                sp.updates_payload(F, 0, [(64, 1)]),
                expect=sp.T_UPDATES_ACK,
            )
        # An unknown query reference is an error frame, not a crash.
        with pytest.raises(ServiceClientError, match="unknown query"):
            client._prover_call(999, sp.M_BEGIN_PROOF, [])
        # The session survives all of the above and still verifies.
        client.send_updates([(3, 4)])
        assert client.query(f2())[0].result.accepted


def test_batched_range_sums_share_one_verifier_copy(server):
    u = 256
    client = connect(server, u, fresh_dataset_id(), seed=8)
    with client:
        client.provision(("range-sum",), 1)
        stream = uniform_frequency_stream(u, max_frequency=20,
                                          rng=random.Random(13))
        updates = list(stream.updates())
        client.send_updates(updates)
        outcomes = client.query(
            range_sum(0, 63), range_sum(64, 127), range_sum(0, 255)
        )
        for outcome, (lo, hi) in zip(outcomes, [(0, 63), (64, 127),
                                                (0, 255)]):
            assert outcome.result.accepted
            assert outcome.result.value == stream.range_sum(lo, hi) % F.p
        # One batched unit: a single copy served all three queries...
        assert client.pool_remaining(("range-sum",)) == 0
        # ...and the batch shared its wire frames across the queries.
        assert outcomes[0].cost.frames == outcomes[1].cost.frames


def test_mixed_batch_over_the_wire(server):
    """A mixed service request — RANGE-SUM + F2 + Fk + INNER-PRODUCT —
    plans onto one engine run: one verifier copy, one prover, shared
    frames, every member verified against the dataset."""
    u = 256
    client = connect(server, u, fresh_dataset_id(), seed=9)
    with client:
        client.provision(("batch",), 1)
        stream = uniform_frequency_stream(u, max_frequency=9,
                                          rng=random.Random(15))
        updates = list(stream.updates())
        client.send_updates(updates)
        updates_b = [(i, 1 + i % 3) for i in range(0, u, 7)]
        client.send_updates(updates_b, vector=1)

        descriptors = [range_sum(0, 100), f2(), fk(3), inner_product(),
                       range_sum(101, 255)]
        outcomes = client.query(*descriptors)
        for outcome in outcomes:
            assert outcome.result.accepted, (
                outcome.descriptor.name, outcome.result.reason
            )
        freq_b = [0] * u
        for i, delta in updates_b:
            freq_b[i] += delta
        sparse = stream.sparse_frequencies()
        assert outcomes[0].result.value == stream.range_sum(0, 100) % F.p
        assert outcomes[1].result.value == stream.self_join_size() % F.p
        assert outcomes[2].result.value == stream.frequency_moment(3) % F.p
        assert outcomes[3].result.value == sum(
            f * freq_b[i] for i, f in sparse.items()
        ) % F.p
        # One batched unit: a single two-LDE copy served all five...
        assert client.pool_remaining(("batch",)) == 0
        # ...over one shared set of wire frames.
        assert len({o.cost.frames for o in outcomes}) == 1
        # Per-query words: an Fk member pays (k+1)·d + shared, a
        # degree-2 member 3·d (+2 for a range announcement) + shared.
        d = client.d
        assert outcomes[2].cost.transcript_words == 4 * d + (d - 1)
        assert outcomes[0].cost.transcript_words == 2 + 3 * d + (d - 1)


def test_batched_cheating_prover_rejected_per_query_over_the_wire():
    """A service prover cheating on exactly one member of a mixed batch
    is rejected for that member — the honest members of the same batch
    still verify behind the real wire."""
    from repro.adversary.cheating_provers import PerQueryCheatingBatchEngine

    updates = [(i % 32, 1 + i % 4) for i in range(96)]

    def cheat_on_f2_member(unit, prover, dataset):
        if not unit.batched:
            return None
        cheat = PerQueryCheatingBatchEngine(F, dataset.u, cheat_query=1,
                                            offset=5)
        cheat.freq_a = list(prover.freq_a)
        cheat.freq_b = list(prover.freq_b)
        return cheat

    outcomes = run_against_cheating_server(
        cheat_on_f2_member, {("batch",): 1},
        [range_sum(0, 50), f2(), fk(2)], updates, u=64,
    )
    assert not outcomes[1].result.accepted
    assert "final check" in outcomes[1].result.reason
    for idx in (0, 2):
        assert outcomes[idx].result.accepted, outcomes[idx].result.reason


def test_server_refuses_resource_abuse(server):
    host, port = server.address
    # A universe above the service cap is refused in the handshake —
    # before any dense vector is allocated.
    with pytest.raises(ServiceClientError, match="limit"):
        ServiceClient(host, port, F, 1 << 25,
                      dataset_id=fresh_dataset_id())
    # The wire protocol itself caps u below the dyadic-padding bound.
    with pytest.raises(sp.ServiceProtocolError):
        sp.hello_payload(F, (1 << 60) + 1, 0)
    oversized = (bytes([8]) + F.p.to_bytes(8, "big")
                 + (1 << 61).to_bytes(8, "big") + (0).to_bytes(8, "big"))
    with pytest.raises(sp.ServiceProtocolError):
        sp.parse_hello(oversized)


def test_second_hello_on_one_connection_refused(server):
    client = connect(server, 64, fresh_dataset_id(), seed=83)
    with client:
        with pytest.raises(ServiceClientError, match="already carries"):
            client._request(
                sp.T_HELLO, 0,
                sp.hello_payload(F, 64, fresh_dataset_id()),
                expect=sp.T_HELLO_ACK,
            )
        # The original session is unharmed.
        client.provision(("f2",), 1)
        client.send_updates([(1, 1)])
        assert client.query(f2())[0].result.accepted


def test_replay_after_streaming_refused(server):
    client = connect(server, 64, fresh_dataset_id(), seed=85)
    with client:
        client.provision(("f2",), 1)
        client.send_updates([(2, 3)])
        with pytest.raises(ValueError, match="double-count"):
            client.replay_missed()


def test_late_join_replay_catches_up(server):
    u = 128
    dataset = fresh_dataset_id()
    writer = connect(server, u, dataset, seed=31)
    with writer:
        writer.provision(("f2",), 1)
        writer.send_updates([(i % u, 1) for i in range(300)])
        first = writer.query(f2())[0]
        assert first.result.accepted

        reader = connect(server, u, dataset, seed=32)
        with reader:
            assert reader.missed_updates == 300
            reader.provision(("f2",), 1)
            assert reader.replay_missed() == 300
            second = reader.query(f2())[0]
            assert second.result.accepted
            assert second.result.value == first.result.value


# -- cheating provers over the wire -------------------------------------------


def run_against_cheating_server(prover_wrapper, provision, descriptors,
                                updates, u=256, tamper=None, seed=41):
    srv = ProverServer(F, prover_wrapper=prover_wrapper)
    handle = srv.serve_in_thread()
    try:
        host, port = handle.address
        client = ServiceClient(host, port, F, u, dataset_id=1,
                               rng=random.Random(seed), tamper=tamper)
        with client:
            for key, copies in provision.items():
                client.provision(key, copies)
            client.send_updates(updates)
            return client.query(*descriptors)
    finally:
        handle.stop()


def heavy_stream(u):
    updates = [(i, 1) for i in range(40)]
    updates += [(7, 1)] * 60  # key 7 is genuinely heavy
    return updates


def test_cheating_f2_provers_rejected_over_the_wire():
    updates = [(i % 16, 1) for i in range(64)]

    def modified_stream(unit, prover, dataset):
        if unit.descriptors[0].kind != f2().kind:
            return None
        cheat = ModifiedStreamF2Prover(F, dataset.u, corrupt_key=3)
        cheat.freq = list(prover.freq)
        return cheat

    def adaptive(unit, prover, dataset):
        if unit.descriptors[0].kind != f2().kind:
            return None
        cheat = AdaptiveF2Cheater(F, dataset.u, offset=5)
        cheat.freq = list(prover.freq)
        return cheat

    for wrapper in (modified_stream, adaptive):
        outcome = run_against_cheating_server(
            wrapper, {("f2",): 1}, [f2()], updates
        )[0]
        assert not outcome.result.accepted
        assert outcome.result.reason


def test_omitting_subvector_prover_rejected_over_the_wire():
    updates = [(3, 1), (9, 2), (40, 5)]

    def omitting(unit, prover, dataset):
        if unit.descriptors[0].kind != range_scan(0, 0).kind:
            return None
        cheat = OmittingSubVectorProver(F, dataset.u, omit_key=9)
        cheat.freq = list(prover.freq)
        return cheat

    outcome = run_against_cheating_server(
        omitting, {("tree",): 1}, [range_scan(0, 63)], updates
    )[0]
    assert not outcome.result.accepted
    assert "root" in outcome.result.reason


def test_concealing_heavy_hitters_prover_rejected_over_the_wire():
    def concealing(unit, prover, dataset):
        if unit.descriptors[0].kind != heavy_hitters(1, 4).kind:
            return None
        cheat = ConcealingHeavyHittersProver(F, dataset.u, 0.25,
                                             conceal_key=7)
        cheat.freq = list(prover.freq)
        return cheat

    outcome = run_against_cheating_server(
        concealing, {("heavy-hitters", 1, 4): 1}, [heavy_hitters(1, 4)],
        heavy_stream(256),
    )[0]
    assert not outcome.result.accepted


def test_tampered_network_rejected_over_the_wire(server):
    """A corrupted frame payload (channel tamper) is caught like any
    dishonest prover — the wire adds no trust."""
    client = connect(server, 64, fresh_dataset_id(), seed=55)
    client.tamper = flip_word(round_index=1)
    with client:
        client.provision(("f2",), 1)
        client.send_updates([(i % 8, 2) for i in range(32)])
        outcome = client.query(f2())[0]
        assert not outcome.result.accepted
        assert "round 1" in outcome.result.reason


# -- worker-pool execution mode ------------------------------------------------


def test_pooled_prover_transcripts_byte_identical():
    u = 1 << 10
    stream = uniform_frequency_stream(u, max_frequency=50,
                                      rng=random.Random(17))
    updates = list(stream.updates())
    point = F.rand_vector(random.Random(19), 10)

    sequential = DistributedF2Prover(F, u, num_workers=8)
    sequential.process_stream(updates)
    v1 = F2Verifier(F, u, point=point)
    v1.process_stream(updates)
    ch1 = Channel()
    r1 = run_f2(sequential, v1, ch1)

    with PooledDistributedF2Prover(F, u, num_workers=8) as pooled:
        pooled.process_stream(updates)
        v2 = F2Verifier(F, u, point=point)
        v2.process_stream(updates)
        ch2 = Channel()
        r2 = run_f2(pooled, v2, ch2)

    assert r1.accepted and r2.accepted
    assert r1.value == r2.value == stream.self_join_size()
    assert ch1.transcript.messages == ch2.transcript.messages
    assert pooled.max_worker_keys == sequential.max_worker_keys


def test_pooled_prover_rejects_bad_worker_counts():
    with pytest.raises(ValueError):
        PooledDistributedF2Prover(F, 64, num_workers=3)
    with pytest.raises(ValueError):
        PooledDistributedF2Prover(F, 4, num_workers=4)


def test_pooled_prover_rejects_bad_thread_configs():
    with pytest.raises(PoolConfigError, match=">= 1"):
        PooledDistributedF2Prover(F, 64, num_workers=4, max_threads=0)
    with pytest.raises(PoolConfigError, match=">= 1"):
        PooledDistributedF2Prover(F, 64, num_workers=4, max_threads=-2)
    with pytest.raises(PoolConfigError, match="exceeds num_workers"):
        PooledDistributedF2Prover(F, 64, num_workers=4, max_threads=8)
    # The boundary is fine: one thread per worker.
    with PooledDistributedF2Prover(F, 64, num_workers=4,
                                   max_threads=4) as prover:
        assert prover.max_threads == 4


def test_service_f2_worker_pool_mode(server):
    u = 512
    client = connect(server, u, fresh_dataset_id(), seed=61)
    with client:
        client.provision(("f2",), 2)
        stream = uniform_frequency_stream(u, max_frequency=30,
                                          rng=random.Random(23))
        client.send_updates(list(stream.updates()))
        plain = client.query(f2())[0]
        pooled = client.query(f2(workers=4))[0]
        assert plain.result.accepted and pooled.result.accepted
        assert plain.result.value == pooled.result.value
        # Identical protocol: same transcript words on the wire.
        assert plain.cost.transcript_words == pooled.cost.transcript_words


# -- load generator ------------------------------------------------------------


def test_load_generator_all_sessions_verify(server):
    host, port = server.address
    report = run_load(host, port, F, 1 << 9, sessions=3,
                      updates_per_session=120, concurrency=3, seed=71,
                      dataset_base=400)
    assert not report.failures, report.failures
    assert report.queries_run == 3 * 3
    assert report.queries_verified == report.queries_run
    assert report.updates_per_second > 0
    record = report.as_record()
    assert record["sessions"] == 3


def test_load_generator_shared_dataset(server):
    host, port = server.address
    report = run_load(host, port, F, 1 << 8, sessions=3,
                      updates_per_session=100, concurrency=1, seed=73,
                      shared_dataset=True, dataset_base=500)
    assert not report.failures, report.failures
    assert report.queries_verified == report.queries_run


# -- end-to-end acceptance demo ------------------------------------------------


def test_end_to_end_kvstore_demo_over_the_wire(server):
    """The acceptance scenario.

    A client streams >= 10^5 OutsourcedKVStore updates over the wire
    (vectorized builds; the no-numpy leg runs a reduced-size variant of
    the same flow), verifies six query types through the QueryRouter,
    checks every per-query Channel/frame cost against the paper's
    asymptotic bounds, and sees a cheating prover rejected.
    """
    if HAVE_NUMPY:
        u, n_pairs = 1 << 18, 100_000
    else:
        u, n_pairs = 1 << 12, 1_500
    d = pow2_dimension(u)
    store = OutsourcedKVStore(u)
    rng = random.Random(97)
    pairs = key_value_pairs(u, n_pairs, rng=rng)
    store.put_many(pairs)
    updates = list(store.updates())
    assert len(updates) == n_pairs

    phi_num, phi_den = 1, 64
    client = connect(server, u, fresh_dataset_id(), seed=101)
    with client:
        client.provision(("tree",), 4)
        # The two range-sums and the F2 plan onto one mixed batch.
        client.provision(("batch",), 1)
        client.provision(("heavy-hitters", phi_num, phi_den), 1)
        client.send_updates(updates)
        assert client.updates_streamed == n_pairs

        some_key, some_val = pairs[0]
        absent = next(k for k in range(u) if store.get(k) is None)
        lo, hi = u // 4, u // 4 + 500
        descriptors = [
            point_lookup(some_key),
            point_lookup(absent),
            range_scan(lo, hi),
            range_sum(0, u // 2),
            range_sum(u // 2, u - 1),
            f2(),
            heavy_hitters(phi_num, phi_den),
            predecessor(u // 2),
        ]
        outcomes = client.query(*descriptors)

        # 1. Every verifier check passes, and values match the store.
        for outcome in outcomes:
            assert outcome.result.accepted, (
                outcome.descriptor.name, outcome.result.reason
            )
        assert outcomes[0].result.value == some_val + 1  # +1 encoding
        assert outcomes[1].result.value == 0  # absent key reads 0
        scan = {k: v - 1 for k, v in outcomes[2].result.value.entries}
        assert sorted(scan.items()) == store.range_scan(lo, hi)
        assert outcomes[3].result.value == sum(
            v + 1 for k, v in store.range_scan(0, u // 2)
        )
        assert outcomes[7].result.value == store.predecessor_key(u // 2)

        # 2. Per-query transcript words against the paper's bounds.
        word_bounds = {
            "point-lookup": 12 * d,          # O(log u)
            "range-scan": 12 * d + 2 * len(scan),  # O(log u + k)
            "range-sum": 12 * d,             # O(log u), 3 words/round
            "f2": 12 * d,                    # O(log u)
            "heavy-hitters": 12 * d * phi_den,  # O(1/phi · log u)
            "predecessor": 12 * d,           # O(log u)
        }
        for outcome in outcomes:
            bound = word_bounds[outcome.descriptor.name]
            assert outcome.cost.transcript_words <= bound, (
                outcome.descriptor.name, outcome.cost.transcript_words,
                bound,
            )
            # Interactive phase: O(1) frames per round -> O(log u) frames
            # (heavy hitters ships O(1/phi) records in its d frames).
            assert outcome.cost.frames <= 8 * d + 16
            # Frame bytes are the word payloads plus bounded envelope
            # overhead per frame — the Channel costs are real bytes.
            wire = outcome.cost.bytes_sent + outcome.cost.bytes_received
            assert wire <= 8 * outcome.cost.transcript_words + \
                48 * outcome.cost.frames

    # 3. The same flow against a cheating cloud is rejected.
    def corrupt_f2(unit, prover, dataset):
        if unit.descriptors[0].kind != f2().kind:
            return None
        cheat = ModifiedStreamF2Prover(F, dataset.u,
                                       corrupt_key=some_key)
        cheat.freq = list(prover.freq)
        return cheat

    small_updates = [(k, v + 1) for k, v in pairs[:200]]
    outcome = run_against_cheating_server(
        corrupt_f2, {("f2",): 1}, [f2()], small_updates, u=u, seed=103
    )[0]
    assert not outcome.result.accepted
