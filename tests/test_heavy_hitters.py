"""Tests for the heavy-hitters protocol (Section 6.1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.comm.channel import Channel, flip_word
from repro.core.heavy_hitters import (
    HeavyHittersProver,
    HeavyHittersVerifier,
    heavy_hitters_protocol,
    heavy_threshold,
    run_heavy_hitters,
)
from repro.field.modular import DEFAULT_FIELD
from repro.streams.generators import zipf_stream
from repro.streams.model import Stream

F = DEFAULT_FIELD


def run_on(stream, phi, seed=0, channel=None):
    verifier = HeavyHittersVerifier(F, stream.u, phi, rng=random.Random(seed))
    prover = HeavyHittersProver(F, stream.u, phi)
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process(i, delta)
    return run_heavy_hitters(prover, verifier, channel)


def test_heavy_threshold():
    assert heavy_threshold(0.1, 100) == 10
    assert heavy_threshold(0.5, 3) == 2
    assert heavy_threshold(0.001, 10) == 1
    assert heavy_threshold(1.0, 0) == 1
    with pytest.raises(ValueError):
        heavy_threshold(0.0, 10)
    with pytest.raises(ValueError):
        heavy_threshold(1.5, 10)


def test_known_heavy_hitters():
    stream = Stream.from_items(16, [3] * 50 + [9] * 30 + [1] * 5)
    result = run_on(stream, 0.25)
    assert result.accepted
    assert result.value == {3: 50, 9: 30}


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=31),
                          st.integers(min_value=1, max_value=15)),
                min_size=1, max_size=25))
def test_completeness_random_strict_streams(updates):
    stream = Stream(32, updates)
    result = run_on(stream, 0.2)
    assert result.accepted
    assert result.value == stream.heavy_hitters(0.2)


def test_no_heavy_hitters_case():
    stream = Stream.from_items(64, list(range(64)))
    result = run_on(stream, 0.5)
    assert result.accepted
    assert result.value == {}


def test_everything_heavy_case():
    stream = Stream(4, [(i, 10) for i in range(4)])
    result = run_on(stream, 0.25)
    assert result.accepted
    assert result.value == {i: 10 for i in range(4)}


def test_zipf_workload():
    stream = zipf_stream(256, 5000, rng=random.Random(1))
    result = run_on(stream, 0.02, seed=2)
    assert result.accepted
    assert result.value == stream.heavy_hitters(0.02)


def test_proof_size_inverse_phi_log_u():
    """Communication O(1/φ · log u): halving φ at most doubles the proof."""
    stream = zipf_stream(512, 8000, rng=random.Random(3))
    words = {}
    for phi in (0.1, 0.05, 0.025):
        result = run_on(stream, phi, seed=4)
        assert result.accepted
        words[phi] = result.transcript.prover_words
    assert words[0.1] <= words[0.05] <= words[0.025]
    d = 9
    for phi, w in words.items():
        assert w <= 3 * (2 * int(2 / phi) + 2) * d


def test_rounds_log_u():
    stream = Stream(1 << 8, [(0, 5)])
    result = run_on(stream, 0.5)
    assert result.accepted
    assert result.transcript.rounds == 8


def test_concealing_prover_rejected():
    from repro.adversary import ConcealingHeavyHittersProver

    stream = Stream.from_items(64, [7] * 40 + [20] * 40 + [1] * 10)
    verifier = HeavyHittersVerifier(F, 64, 0.3, rng=random.Random(5))
    prover = ConcealingHeavyHittersProver(F, 64, 0.3, conceal_key=7)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)
    result = run_heavy_hitters(prover, verifier)
    assert not result.accepted


def test_inflating_prover_rejected():
    from repro.adversary import InflatingHeavyHittersProver

    stream = Stream.from_items(64, [7] * 40 + [1] * 10)
    verifier = HeavyHittersVerifier(F, 64, 0.3, rng=random.Random(6))
    prover = InflatingHeavyHittersProver(F, 64, 0.3, inflate_key=1,
                                         amount=100)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)
    result = run_heavy_hitters(prover, verifier)
    assert not result.accepted


def test_in_flight_tamper_rejected():
    stream = Stream.from_items(64, [7] * 40 + [1] * 10)
    channel = Channel(tamper=flip_word(round_index=3, position=1))
    result = run_on(stream, 0.3, channel=channel)
    assert not result.accepted


def test_dimension_mismatch_rejected():
    verifier = HeavyHittersVerifier(F, 64, 0.1, rng=random.Random(7))
    prover = HeavyHittersProver(F, 128, 0.1)
    assert not run_heavy_hitters(prover, verifier).accepted


def test_prover_true_heavy_hitters_oracle():
    prover = HeavyHittersProver(F, 16, 0.5)
    prover.process_stream([(3, 6), (4, 3), (5, 1)])
    assert prover.true_heavy_hitters() == {3: 6}


def test_verifier_tracks_n():
    verifier = HeavyHittersVerifier(F, 16, 0.5, rng=random.Random(8))
    verifier.process_stream([(0, 3), (5, 4), (5, -2)])
    assert verifier.n == 5


def test_end_to_end_helper():
    stream = Stream.from_items(32, [9] * 9 + [1])
    result = heavy_hitters_protocol(stream, 0.5, F, rng=random.Random(9))
    assert result.accepted
    assert result.value == {9: 9}


def test_witness_structure_present():
    """Light siblings of heavy nodes (the omission witnesses) appear in
    the proof: the level-0 message contains light leaves too."""
    stream = Stream.from_items(16, [0] * 50 + [1] * 2)
    verifier = HeavyHittersVerifier(F, 16, 0.5, rng=random.Random(10))
    prover = HeavyHittersProver(F, 16, 0.5)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)
    result = run_heavy_hitters(prover, verifier)
    assert result.accepted
    level0 = [m for m in result.transcript.messages if m.label == "level0"][0]
    listed_keys = list(level0.payload[0::3])
    assert 0 in listed_keys and 1 in listed_keys  # witness sibling listed
