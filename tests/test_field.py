"""Tests for repro.field.modular (the Z_p arithmetic substrate)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.modular import DEFAULT_FIELD, PrimeField
from repro.field.primes import MERSENNE_61

F = DEFAULT_FIELD
elements = st.integers(min_value=-(2**80), max_value=2**80)
canonical = st.integers(min_value=0, max_value=F.p - 1)


def test_constructor_rejects_composite():
    with pytest.raises(ValueError):
        PrimeField(10)


def test_constructor_check_can_be_skipped():
    # check_prime=False is for known primes (used by DEFAULT_FIELD).
    f = PrimeField(MERSENNE_61, check_prime=False)
    assert f.p == MERSENNE_61


def test_default_field_is_paper_field():
    assert F.p == 2**61 - 1
    assert F.word_bytes == 8


@given(elements)
def test_reduce_canonical(a):
    assert 0 <= F.reduce(a) < F.p


@given(elements, elements)
def test_add_commutative(a, b):
    assert F.add(a, b) == F.add(b, a)


@given(elements, elements, elements)
def test_add_associative(a, b, c):
    assert F.add(F.add(a, b), c) == F.add(a, F.add(b, c))


@given(elements, elements, elements)
def test_mul_distributes_over_add(a, b, c):
    assert F.mul(a, F.add(b, c)) == F.add(F.mul(a, b), F.mul(a, c))


@given(elements)
def test_additive_inverse(a):
    assert F.add(a, F.neg(a)) == 0


@given(elements)
def test_sub_is_add_neg(a):
    assert F.sub(0, a) == F.neg(a)


@given(canonical.filter(lambda x: x != 0))
def test_multiplicative_inverse(a):
    assert F.mul(a, F.inv(a)) == 1


def test_inverse_of_zero_raises():
    with pytest.raises(ZeroDivisionError):
        F.inv(0)
    with pytest.raises(ZeroDivisionError):
        F.inv(F.p)  # zero in canonical form


@given(canonical.filter(lambda x: x != 0), canonical)
def test_div_then_mul_roundtrip(a, b):
    assert F.mul(F.div(b, a), a) == F.reduce(b)


@given(canonical, st.integers(min_value=0, max_value=1000))
def test_pow_matches_builtin(a, e):
    assert F.pow(a, e) == pow(a, e, F.p)


@given(canonical.filter(lambda x: x != 0), st.integers(min_value=1, max_value=50))
def test_negative_exponent(a, e):
    assert F.mul(F.pow(a, e), F.pow(a, -e)) == 1


def test_fermat_little_theorem():
    rng = random.Random(1)
    for _ in range(10):
        a = rng.randrange(1, F.p)
        assert F.pow(a, F.p - 1) == 1


@given(st.lists(elements, max_size=20))
def test_sum_matches_python_sum(xs):
    assert F.sum(xs) == sum(xs) % F.p


@given(st.lists(elements, max_size=12))
def test_prod_matches_reference(xs):
    expected = 1
    for x in xs:
        expected = expected * x % F.p
    assert F.prod(xs) == expected


@given(st.lists(st.tuples(elements, elements), max_size=15))
def test_dot_matches_reference(pairs):
    xs = [a for a, _ in pairs]
    ys = [b for _, b in pairs]
    assert F.dot(xs, ys) == sum(a * b for a, b in pairs) % F.p


def test_dot_length_mismatch():
    with pytest.raises(ValueError):
        F.dot([1, 2], [1])


@given(st.lists(canonical.filter(lambda x: x != 0), min_size=1, max_size=25))
def test_batch_inv_matches_single(xs):
    batch = F.batch_inv(xs)
    assert batch == [F.inv(x) for x in xs]


def test_batch_inv_empty():
    assert F.batch_inv([]) == []


def test_batch_inv_rejects_zero():
    with pytest.raises(ZeroDivisionError):
        F.batch_inv([3, 0, 5])


def test_rand_in_range():
    rng = random.Random(7)
    for _ in range(100):
        assert 0 <= F.rand(rng) < F.p


def test_rand_vector_length_and_range():
    rng = random.Random(8)
    v = F.rand_vector(rng, 17)
    assert len(v) == 17
    assert all(0 <= x < F.p for x in v)


def test_contains():
    assert 0 in F
    assert F.p - 1 in F
    assert F.p not in F
    assert -1 not in F


def test_equality_and_hash():
    other = PrimeField(F.p, check_prime=False)
    assert F == other
    assert hash(F) == hash(other)
    assert F != PrimeField(13)


def test_words_to_bytes():
    assert F.words_to_bytes(10) == 80


def test_repr():
    assert "2305843009213693951" in repr(F)
