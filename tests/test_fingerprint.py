"""Tests for repro.comm.fingerprint."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.comm.fingerprint import (
    SequenceFingerprint,
    StreamFingerprint,
    fingerprint_words,
)
from repro.field.modular import DEFAULT_FIELD, PrimeField

F = DEFAULT_FIELD

words = st.lists(st.integers(min_value=0, max_value=F.p - 1), max_size=30)


@given(words)
def test_incremental_matches_one_shot(ws):
    z = 123456789
    fp = SequenceFingerprint(F, z=z)
    fp.absorb_all(ws)
    assert fp.value == fingerprint_words(F, z, ws)
    assert fp.length == len(ws)


@given(words)
def test_fingerprint_is_polynomial_in_z(ws):
    z = 987654321
    expected = sum(w * pow(z, k + 1, F.p) for k, w in enumerate(ws)) % F.p
    assert fingerprint_words(F, z, ws) == expected


@given(words, words)
def test_distinct_sequences_distinct_fingerprints(a, b):
    """Collisions need z to hit a polynomial root: astronomically unlikely
    at random z over p = 2^61 - 1 — assert none occur for a fixed random
    key.  Trailing zeros are not encoded (the difference polynomial is
    identically zero), so protocols compare lengths separately; strip them
    here to state the exact guarantee."""
    while a and a[-1] == 0:
        a = a[:-1]
    while b and b[-1] == 0:
        b = b[:-1]
    if a == b:
        return
    z = random.Random(42).randrange(1, F.p)
    assert fingerprint_words(F, z, a) != fingerprint_words(F, z, b)


def test_sequence_order_matters():
    z = 5
    assert fingerprint_words(F, z, [1, 2]) != fingerprint_words(F, z, [2, 1])


def test_copy_empty_shares_key():
    fp = SequenceFingerprint(F, z=7)
    fp.absorb(9)
    fresh = fp.copy_empty()
    assert fresh.z == 7 and fresh.value == 0 and fresh.length == 0


def test_requires_key_or_rng():
    with pytest.raises(ValueError):
        SequenceFingerprint(F)
    fp = SequenceFingerprint(F, rng=random.Random(1))
    assert 0 <= fp.z < F.p


def test_space_words_constant():
    fp = SequenceFingerprint(F, z=3)
    fp.absorb_all(range(100))
    assert fp.space_words == 3


# -- StreamFingerprint (the [28] synopsis) -------------------------------------


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=31),
                          st.integers(min_value=-9, max_value=9)),
                max_size=40))
def test_stream_fingerprint_linear_in_updates(updates):
    sf = StreamFingerprint(F, 32, z=424242)
    a = [0] * 32
    for i, d in updates:
        sf.update(i, d)
        a[i] += d
    entries = [(i, v % F.p) for i, v in enumerate(a) if v % F.p]
    assert sf.matches_claimed_vector(entries)


def test_stream_fingerprint_rejects_wrong_vector():
    sf = StreamFingerprint(F, 16, z=77)
    sf.update(3, 5)
    assert sf.matches_claimed_vector([(3, 5)])
    assert not sf.matches_claimed_vector([(3, 6)])
    assert not sf.matches_claimed_vector([(4, 5)])
    assert not sf.matches_claimed_vector([])
    assert not sf.matches_claimed_vector([(16, 5)])  # out of universe


def test_stream_fingerprint_deletion_cancels():
    sf = StreamFingerprint(F, 16, z=88)
    sf.update(5, 2)
    sf.update(5, -2)
    assert sf.matches_claimed_vector([])


def test_stream_fingerprint_universe_check():
    sf = StreamFingerprint(F, 8, z=9)
    with pytest.raises(ValueError):
        sf.update(8, 1)


def test_stream_fingerprint_space():
    assert StreamFingerprint(F, 1 << 30, z=3).space_words == 2
