"""Tests for repro.streams.kvstore (the Dynamo-style scenario)."""

from __future__ import annotations

import pytest

from repro.streams.kvstore import (
    DuplicateKeyError,
    KVStreamEncoder,
    OutsourcedKVStore,
)
from repro.streams.model import UniverseError


def test_encoder_shifts_values():
    enc = KVStreamEncoder(16)
    assert enc.encode_put(3, 0) == (3, 1)
    assert enc.encode_put(4, 9) == (4, 10)


def test_encoder_decode_roundtrip():
    enc = KVStreamEncoder(64)
    for key, value in [(0, 0), (5, 31), (63, 63)]:
        _, freq = enc.encode_put(key, value)
        assert KVStreamEncoder.decode_frequency(freq) == value
    assert KVStreamEncoder.decode_frequency(0) is None


def test_encoder_rejects_duplicates():
    enc = KVStreamEncoder(8)
    enc.encode_put(2, 1)
    with pytest.raises(DuplicateKeyError):
        enc.encode_put(2, 5)


def test_encoder_validates_ranges():
    enc = KVStreamEncoder(8)
    with pytest.raises(UniverseError):
        enc.encode_put(8, 0)
    with pytest.raises(UniverseError):
        enc.encode_put(0, 8)


def test_store_get():
    store = OutsourcedKVStore(32)
    store.put(10, 7)
    store.put(20, 0)
    assert store.get(10) == 7
    assert store.get(20) == 0
    assert store.get(11) is None
    assert len(store) == 2


def test_store_stream_reflects_encoding():
    store = OutsourcedKVStore(32)
    store.put(10, 7)
    assert list(store.updates()) == [(10, 8)]
    assert store.stream.frequency_vector()[10] == 8


def test_store_put_many():
    store = OutsourcedKVStore(64)
    updates = store.put_many([(1, 2), (3, 4)])
    assert updates == [(1, 3), (3, 5)]


def test_store_predecessor_successor():
    store = OutsourcedKVStore(100)
    store.put_many([(5, 1), (50, 2), (75, 3)])
    assert store.predecessor_key(60) == 50
    assert store.predecessor_key(4) is None
    assert store.successor_key(51) == 75
    assert store.successor_key(76) is None
    assert store.predecessor_key(50) == 50


def test_store_range_scan_sorted():
    store = OutsourcedKVStore(100)
    store.put_many([(30, 9), (10, 1), (20, 4), (90, 2)])
    assert store.range_scan(10, 30) == [(10, 1), (20, 4), (30, 9)]
    assert store.range_scan(31, 89) == []


def test_store_range_value_sum():
    store = OutsourcedKVStore(100)
    store.put_many([(1, 10), (2, 20), (3, 30)])
    assert store.range_value_sum(2, 3) == 50
    assert store.range_value_sum(4, 99) == 0


def test_store_largest_values_ranked():
    store = OutsourcedKVStore(100)
    store.put_many([(1, 5), (2, 9), (3, 9), (4, 1)])
    assert store.largest_values(2) == [(2, 9), (3, 9)]
    assert store.largest_values(10) == [(2, 9), (3, 9), (1, 5), (4, 1)]


# -- edge cases (service-demo hardening) --------------------------------------


def test_store_duplicate_key_rejected_and_state_unchanged():
    store = OutsourcedKVStore(16)
    store.put(3, 7)
    with pytest.raises(DuplicateKeyError):
        store.put(3, 9)
    # The failed put left no trace: value, stream and length unchanged.
    assert store.get(3) == 7
    assert len(store) == 1
    assert list(store.updates()) == [(3, 8)]


def test_store_duplicate_in_put_many_keeps_prefix():
    store = OutsourcedKVStore(16)
    with pytest.raises(DuplicateKeyError):
        store.put_many([(1, 5), (2, 6), (1, 7)])
    assert store.get(1) == 5
    assert store.get(2) == 6
    assert len(store) == 2


def test_store_empty_range_scan():
    store = OutsourcedKVStore(64)
    assert store.range_scan(0, 63) == []
    assert store.range_value_sum(0, 63) == 0
    store.put(10, 3)
    # A populated store still answers empty for an untouched range.
    assert store.range_scan(20, 40) == []
    assert store.range_value_sum(20, 40) == 0
    # Degenerate single-key ranges.
    assert store.range_scan(10, 10) == [(10, 3)]
    assert store.range_scan(11, 11) == []


def test_store_predecessor_successor_empty_store():
    store = OutsourcedKVStore(32)
    assert store.predecessor_key(31) is None
    assert store.successor_key(0) is None


def test_store_predecessor_successor_domain_boundaries():
    u = 32
    store = OutsourcedKVStore(u)
    store.put(0, 5)
    store.put(u - 1, 6)
    # Queries at the extreme keys of the domain.
    assert store.predecessor_key(0) == 0
    assert store.successor_key(u - 1) == u - 1
    # Just inside the gap between the two stored keys.
    assert store.predecessor_key(u - 2) == 0
    assert store.successor_key(1) == u - 1
    # The boundary keys answer for the whole domain.
    assert store.predecessor_key(u - 1) == u - 1
    assert store.successor_key(0) == 0


def test_store_boundary_keys_and_values():
    u = 16
    store = OutsourcedKVStore(u)
    # Extreme key/value combinations allowed by the universe.
    assert store.put(0, 0) == (0, 1)
    assert store.put(u - 1, u - 1) == (u - 1, u)
    assert store.get(0) == 0
    assert store.get(u - 1) == u - 1
    with pytest.raises(UniverseError):
        store.put(u, 0)
    with pytest.raises(UniverseError):
        store.put(1, u)
    with pytest.raises(UniverseError):
        store.put(-1, 0)


def test_store_largest_values_ties_break_by_key():
    store = OutsourcedKVStore(16)
    store.put_many([(4, 9), (2, 9), (7, 1)])
    assert store.largest_values(2) == [(2, 9), (4, 9)]
    assert store.largest_values(10) == [(2, 9), (4, 9), (7, 1)]
    assert OutsourcedKVStore(16).largest_values(3) == []
