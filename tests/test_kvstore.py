"""Tests for repro.streams.kvstore (the Dynamo-style scenario)."""

from __future__ import annotations

import pytest

from repro.streams.kvstore import (
    DuplicateKeyError,
    KVStreamEncoder,
    OutsourcedKVStore,
)
from repro.streams.model import UniverseError


def test_encoder_shifts_values():
    enc = KVStreamEncoder(16)
    assert enc.encode_put(3, 0) == (3, 1)
    assert enc.encode_put(4, 9) == (4, 10)


def test_encoder_decode_roundtrip():
    enc = KVStreamEncoder(64)
    for key, value in [(0, 0), (5, 31), (63, 63)]:
        _, freq = enc.encode_put(key, value)
        assert KVStreamEncoder.decode_frequency(freq) == value
    assert KVStreamEncoder.decode_frequency(0) is None


def test_encoder_rejects_duplicates():
    enc = KVStreamEncoder(8)
    enc.encode_put(2, 1)
    with pytest.raises(DuplicateKeyError):
        enc.encode_put(2, 5)


def test_encoder_validates_ranges():
    enc = KVStreamEncoder(8)
    with pytest.raises(UniverseError):
        enc.encode_put(8, 0)
    with pytest.raises(UniverseError):
        enc.encode_put(0, 8)


def test_store_get():
    store = OutsourcedKVStore(32)
    store.put(10, 7)
    store.put(20, 0)
    assert store.get(10) == 7
    assert store.get(20) == 0
    assert store.get(11) is None
    assert len(store) == 2


def test_store_stream_reflects_encoding():
    store = OutsourcedKVStore(32)
    store.put(10, 7)
    assert list(store.updates()) == [(10, 8)]
    assert store.stream.frequency_vector()[10] == 8


def test_store_put_many():
    store = OutsourcedKVStore(64)
    updates = store.put_many([(1, 2), (3, 4)])
    assert updates == [(1, 3), (3, 5)]


def test_store_predecessor_successor():
    store = OutsourcedKVStore(100)
    store.put_many([(5, 1), (50, 2), (75, 3)])
    assert store.predecessor_key(60) == 50
    assert store.predecessor_key(4) is None
    assert store.successor_key(51) == 75
    assert store.successor_key(76) is None
    assert store.predecessor_key(50) == 50


def test_store_range_scan_sorted():
    store = OutsourcedKVStore(100)
    store.put_many([(30, 9), (10, 1), (20, 4), (90, 2)])
    assert store.range_scan(10, 30) == [(10, 1), (20, 4), (30, 9)]
    assert store.range_scan(31, 89) == []


def test_store_range_value_sum():
    store = OutsourcedKVStore(100)
    store.put_many([(1, 10), (2, 20), (3, 30)])
    assert store.range_value_sum(2, 3) == 50
    assert store.range_value_sum(4, 99) == 0


def test_store_largest_values_ranked():
    store = OutsourcedKVStore(100)
    store.put_many([(1, 5), (2, 9), (3, 9), (4, 1)])
    assert store.largest_values(2) == [(2, 9), (3, 9)]
    assert store.largest_values(10) == [(2, 9), (3, 9), (1, 5), (4, 1)]
