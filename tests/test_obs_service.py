"""Service-level observability: the invariant and the accounting.

Two contracts anchor this suite:

1. **Differential byte-identity** — running the identical workload with
   every observability plane enabled (tracing, metrics, structured
   logs) and with everything disabled produces *byte-identical*
   transcripts.  Instrumentation lives entirely off the proof path:
   trace ids come from ``os.urandom``, never the verifier RNGs.

2. **Metrics equal accounting** — the ``repro_*_query_words``
   histograms are not approximations of the paper's (s, t) cost model;
   they record exactly the numbers ``Channel.query_cost`` /
   ``QueryOutcome.cost.transcript_words`` report, under the scalar and
   the vectorized field backend alike.

Plus the wire/HTTP surfaces: the ``H_STATS`` frame round-trip and the
``--stats`` Prometheus-style endpoint of ``python -m repro.service``.
"""

from __future__ import annotations

import io
import os
import random
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.comm.wire import encode_transcript
from repro.field.modular import DEFAULT_FIELD as F
from repro.field.vectorized import HAVE_NUMPY
from repro.service import (
    ProverServer,
    ServiceClient,
    f2,
    fk,
    inner_product,
    range_sum,
)

U = 64
UPDATES_A = [(i % U, 1 + i % 3) for i in range(48)]
UPDATES_B = [((i * 7) % U, 1 + i % 5) for i in range(48)]

_DATASET_COUNTER = iter(range(200_000, 240_000))


def fresh_dataset_id():
    return next(_DATASET_COUNTER)


#: Every sum-check family and the descriptor that exercises it.  The
#: kind strings are the histogram labels both the client and the
#: batched-engine metrics use.
SUMCHECK_KINDS = [
    ("f2", f2),
    ("fk", lambda: fk(3)),
    ("inner-product", inner_product),
    ("range-sum", lambda: range_sum(4, 33)),
]


@pytest.fixture(scope="module")
def server():
    srv = ProverServer(F, node_name="n-obs")
    handle = srv.serve_in_thread()
    yield handle
    handle.stop()


@pytest.fixture
def registry():
    """A fresh enabled registry installed globally for one test."""
    reg = obs.MetricsRegistry(enabled=True)
    old = obs.set_registry(reg)
    yield reg
    obs.set_registry(old)


def _obs_on():
    """Enable all three planes; returns (old state, trace sink)."""
    sink = io.StringIO()
    old_reg = obs.set_registry(obs.MetricsRegistry(enabled=True))
    old_tracer = obs.set_tracer(obs.Tracer(sink=sink, enabled=True))
    obs.configure_logging(sink=io.StringIO())
    return (old_reg, old_tracer), sink


def _obs_off():
    old_reg = obs.set_registry(obs.MetricsRegistry(enabled=False))
    old_tracer = obs.set_tracer(obs.Tracer(enabled=False))
    obs.configure_logging(sink=None)
    return (old_reg, old_tracer), None


def _obs_restore(old):
    old_reg, old_tracer = old
    obs.set_registry(old_reg)
    obs.set_tracer(old_tracer)
    obs.configure_logging(sink=None)


def _run_workload(server, dataset_id, seed=0, descriptors=None,
                  pool_key=("batch",)):
    host, port = server.address
    client = ServiceClient(host, port, F, U, dataset_id=dataset_id,
                           rng=random.Random(seed), op_timeout=10.0)
    with client:
        client.provision(pool_key, 1)
        client.send_updates(UPDATES_A)
        client.send_updates(UPDATES_B, vector=1)
        if descriptors is None:
            descriptors = [factory() for _, factory in SUMCHECK_KINDS]
        outcomes = client.query(*descriptors)
    return outcomes


def _transcripts(outcomes):
    return [encode_transcript(F, o.transcript) for o in outcomes]


# -- the invariant: obs on vs. off changes zero transcript bytes ---------------


def test_observability_changes_zero_transcript_bytes(server):
    old, _ = _obs_off()
    try:
        baseline = _transcripts(_run_workload(server, fresh_dataset_id()))
    finally:
        _obs_restore(old)

    old, trace_sink = _obs_on()
    try:
        traced = _transcripts(_run_workload(server, fresh_dataset_id()))
    finally:
        _obs_restore(old)

    assert traced == baseline
    # The instrumented run really was instrumented: spans were emitted
    # and the words histograms filled — yet the bytes did not move.
    assert trace_sink.getvalue().strip()


def test_observability_is_byte_neutral_through_the_worker_pool(
        server, monkeypatch):
    """Same invariant through the process-pool F2 path (shared-memory
    shard tables, worker subprocesses): tracing a pooled query must not
    perturb its transcript either."""
    monkeypatch.setenv("REPRO_POOL_MODE", "process")

    old, _ = _obs_off()
    try:
        baseline = _transcripts(_run_workload(
            server, fresh_dataset_id(), descriptors=[f2(2)],
            pool_key=("f2",)))
    finally:
        _obs_restore(old)

    old, trace_sink = _obs_on()
    try:
        traced = _transcripts(_run_workload(
            server, fresh_dataset_id(), descriptors=[f2(2)],
            pool_key=("f2",)))
    finally:
        _obs_restore(old)

    assert traced == baseline
    assert trace_sink.getvalue().strip()


# -- metrics equal accounting --------------------------------------------------


_BACKENDS = ["scalar"] + (["vectorized"] if HAVE_NUMPY else [])


@pytest.mark.parametrize("backend", _BACKENDS)
def test_words_histograms_equal_query_cost_batched(registry, monkeypatch,
                                                   backend):
    """Batched direct-sum path: for every sum-check family, both the
    client-side and the engine-side words histograms hold exactly the
    ``transcript_words`` the outcome accounts — per backend."""
    monkeypatch.setenv("REPRO_BACKEND", backend)
    srv = ProverServer(F)
    handle = srv.serve_in_thread()
    try:
        outcomes = _run_workload(handle, fresh_dataset_id())
    finally:
        handle.stop()

    assert len(outcomes) == len(SUMCHECK_KINDS)
    for outcome in outcomes:
        assert outcome.result.accepted
        kind = outcome.descriptor.name
        words = outcome.cost.transcript_words
        # The engine observes Channel.query_cost per batch member; the
        # client observes the outcome's cost.  Both must be *exactly*
        # the accounting value — a missing observation shows up as [].
        client_h = registry.histogram("repro_client_query_words",
                                      kind=kind)
        engine_h = registry.histogram("repro_sumcheck_query_words",
                                      kind=kind)
        assert client_h.samples() == [words]
        assert engine_h.samples() == [words]
    assert registry.histogram("repro_sumcheck_round_seconds").count > 0


@pytest.mark.parametrize("backend", _BACKENDS)
def test_words_histograms_equal_query_cost_single_shot(registry,
                                                       monkeypatch,
                                                       backend):
    """Single-shot path (one descriptor per query call, no batching):
    the client-side histogram equals ``transcript.total_words``.  (The
    engine-side histogram is batched-only, so it is not checked here.)"""
    monkeypatch.setenv("REPRO_BACKEND", backend)
    srv = ProverServer(F)
    handle = srv.serve_in_thread()
    try:
        host, port = handle.address
        client = ServiceClient(host, port, F, U,
                               dataset_id=fresh_dataset_id(),
                               rng=random.Random(1), op_timeout=10.0)
        with client:
            client.provision(("f2",), 1)
            client.provision(("fk", 3), 1)
            client.provision(("inner-product",), 1)
            client.provision(("range-sum",), 1)
            client.send_updates(UPDATES_A)
            client.send_updates(UPDATES_B, vector=1)
            outcomes = []
            for _name, factory in SUMCHECK_KINDS:
                outcomes.extend(client.query(factory()))
    finally:
        handle.stop()

    for outcome in outcomes:
        assert outcome.result.accepted
        words = outcome.cost.transcript_words
        assert outcome.transcript.total_words == words
        client_h = registry.histogram("repro_client_query_words",
                                      kind=outcome.descriptor.name)
        assert client_h.samples() == [words]


# -- the H_STATS wire frame ----------------------------------------------------


def test_h_stats_frame_roundtrip(server, registry):
    outcomes = _run_workload(server, fresh_dataset_id())
    assert all(o.result.accepted for o in outcomes)
    host, port = server.address
    client = ServiceClient(host, port, F, U,
                           dataset_id=fresh_dataset_id(),
                           rng=random.Random(2), op_timeout=10.0)
    with client:
        stats = client.stats_json()
    assert stats["node"] == "n-obs"
    assert set(stats["metrics"]) == {"counters", "gauges", "histograms"}
    assert "timeouts" in stats["server"]
    assert "rate_limited" in stats["server"]
    # The registry section reflects the server's session registry, and
    # the metrics section carries the words histograms the workload
    # above just filled (shared in-process registry).
    assert any(key.startswith("repro_client_query_words")
               for key in stats["metrics"]["histograms"])


# -- the --stats HTTP endpoint -------------------------------------------------


def _read_announce(proc, tag, deadline=30.0):
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        parts = line.split()
        if parts[:2] == [tag, "LISTENING"]:
            return parts[2], int(parts[3])
    raise AssertionError("no %s announce from service process" % tag)


def test_stats_endpoint_serves_prometheus_text(tmp_path):
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0",
         "--stats", "0", "--node-name", "cli-n0"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env,
    )
    try:
        host, port = _read_announce(proc, "REPRO-SERVICE")
        stats_host, stats_port = _read_announce(proc, "REPRO-STATS")
        # Put some traffic through so the exposition has instruments.
        client = ServiceClient(host, port, F, U,
                               dataset_id=fresh_dataset_id(),
                               rng=random.Random(3), op_timeout=10.0)
        with client:
            client.provision(("f2",), 1)
            client.send_updates(UPDATES_A)
            (outcome,) = client.query(f2())
        assert outcome.result.accepted
        text = obs.read_stats(stats_host, stats_port)
        assert "# TYPE" in text
        # Every non-comment line parses as "name value".
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            _name, value = line.rsplit(None, 1)
            float(value)
    finally:
        proc.terminate()
        proc.wait(timeout=10)
