"""Statistical validation of Lemma 1 and the Theorem 5 soundness bound.

Over a deliberately tiny field the adversary's escape probability becomes
measurable; repeated trials confirm the empirical rate stays within the
analytical bound (2dℓ/p for the sum-check; ~log(u)/p for the tree), and
that the same adversaries at p = 2^61 - 1 never escape in practice.
"""

from __future__ import annotations

import random

from repro.adversary import AlteringSubVectorProver, ModifiedStreamF2Prover
from repro.core.f2 import F2Verifier, run_f2
from repro.core.subvector import TreeHashVerifier, run_subvector
from repro.field.modular import DEFAULT_FIELD, PrimeField
from repro.streams.model import Stream

TINY = PrimeField(101)
U = 8  # d = 3
TRIALS = 400


def _f2_escape_rate(field, trials, seed):
    """Fraction of trials a modified-stream prover is (wrongly) accepted."""
    stream = Stream.from_items(U, [1, 3, 3, 5])
    escapes = 0
    master = random.Random(seed)
    for _ in range(trials):
        verifier = F2Verifier(field, U,
                              rng=random.Random(master.getrandbits(64)))
        prover = ModifiedStreamF2Prover(field, U, corrupt_key=1)
        verifier.process_stream(stream.updates())
        prover.process_stream(stream.updates())
        if run_f2(prover, verifier).accepted:
            escapes += 1
    return escapes / trials


def test_f2_escape_rate_within_lemma1_bound():
    d, ell = 3, 2
    bound = 2 * d * ell / TINY.p  # ≈ 0.119
    rate = _f2_escape_rate(TINY, TRIALS, seed=1)
    # Allow generous sampling slack above the analytical bound.
    assert rate <= 3 * bound + 0.05, (
        "escape rate %.3f far above Lemma 1 bound %.3f" % (rate, bound)
    )


def test_f2_escapes_actually_occur_in_tiny_field():
    """The bound is not vacuous: over Z_101 some escapes should happen
    across many trials (each trial escapes with prob ~ a few / 101)."""
    rate = _f2_escape_rate(TINY, TRIALS, seed=2)
    assert rate > 0, (
        "expected at least one escape over %d trials at p=101" % TRIALS
    )


def test_f2_never_escapes_in_production_field():
    rate = _f2_escape_rate(DEFAULT_FIELD, 50, seed=3)
    assert rate == 0.0


def _subvector_escape_rate(field, trials, seed):
    stream = Stream.from_items(U, [2, 5])
    escapes = 0
    master = random.Random(seed)
    for _ in range(trials):
        verifier = TreeHashVerifier(
            field, U, rng=random.Random(master.getrandbits(64))
        )
        prover = AlteringSubVectorProver(field, U, alter_key=2, offset=1)
        verifier.process_stream(stream.updates())
        prover.process_stream(stream.updates())
        if run_subvector(prover, verifier, 0, U - 1).accepted:
            escapes += 1
    return escapes / trials


def test_subvector_escape_rate_within_theorem5_bound():
    bound = 3 / TINY.p  # log u / p with log u = 3
    rate = _subvector_escape_rate(TINY, TRIALS, seed=4)
    assert rate <= 5 * bound + 0.05


def test_subvector_never_escapes_in_production_field():
    rate = _subvector_escape_rate(DEFAULT_FIELD, 50, seed=5)
    assert rate == 0.0
