"""Cross-backend equivalence: scalar and vectorized paths are bit-identical.

The acceptance bar for the vectorized engine: every protocol produces the
*same transcript* whichever backend the prover runs on, and the batched
LDE paths produce byte-identical values to the per-update loop.  These
tests run on every CI leg; without NumPy the vectorized cases are skipped
and the scalar reference still exercises the shared API.
"""

from __future__ import annotations

import random

import pytest

from repro.comm.channel import Channel
from repro.core.f2 import F2Prover, F2Verifier, run_f2
from repro.core.fk import FkProver, FkVerifier, run_fk
from repro.core.frequency_based import f0_protocol
from repro.core.subvector import SubVectorProver, TreeHashVerifier, run_subvector
from repro.field.modular import DEFAULT_FIELD as F
from repro.field.vectorized import HAVE_NUMPY, ScalarBackend, get_backend
from repro.gkr.sumcheck import boolean_sum, round_message
from repro.lde.chi import chi_table, chi_table_batch
from repro.lde.streaming import MultipointStreamingLDE, StreamingLDE
from repro.streams.generators import uniform_frequency_stream, zipf_stream

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def mixed_updates(u, n, seed=0):
    """Insertions and deletions with large and small deltas."""
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        out.append((rng.randrange(u), rng.randrange(-10**6, 10**6)))
    return out


# -- streaming LDE -----------------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("u,ell,block", [
    (256, 2, 64), (256, 2, 37), (100, 3, 11), (625, 5, 4096), (17, 4, 1),
])
def test_batched_lde_identical_to_scalar_loop(u, ell, block):
    point_rng = random.Random(99)
    scalar = StreamingLDE(F, u, ell=ell, rng=point_rng,
                          backend=ScalarBackend(F))
    vector = StreamingLDE(F, u, ell=ell, point=scalar.point)
    updates = mixed_updates(u, 1000, seed=u + ell)
    scalar.process_stream(updates)
    vector.process_stream_batched(updates, block=block)
    assert vector.value == scalar.value
    assert vector.updates_processed == scalar.updates_processed


@needs_numpy
def test_batched_lde_accepts_iterators_and_partial_blocks():
    scalar = StreamingLDE(F, 50, rng=random.Random(1),
                          backend=ScalarBackend(F))
    vector = StreamingLDE(F, 50, point=scalar.point)
    updates = mixed_updates(50, 101, seed=5)
    scalar.process_stream(iter(updates))
    vector.process_stream_batched(iter(updates), block=25)  # 101 = 4*25 + 1
    assert vector.value == scalar.value


@needs_numpy
def test_batched_lde_rejects_out_of_range_keys():
    lde = StreamingLDE(F, 32, rng=random.Random(2))
    with pytest.raises(ValueError):
        lde.process_stream_batched([(0, 1), (32, 1)])
    with pytest.raises(ValueError):
        lde.process_stream_batched([(-1, 1)])


def test_batched_lde_scalar_backend_fallback():
    scalar = StreamingLDE(F, 64, rng=random.Random(3),
                          backend=ScalarBackend(F))
    reference = StreamingLDE(F, 64, point=scalar.point,
                             backend=ScalarBackend(F))
    updates = mixed_updates(64, 200, seed=7)
    reference.process_stream(updates)
    scalar.process_stream_batched(updates)  # falls back to the scalar loop
    assert scalar.value == reference.value
    assert scalar.updates_processed == reference.updates_processed


@needs_numpy
def test_multipoint_batched_matches_scalar():
    points = [
        [random.Random(k).randrange(F.p) for _ in range(6)] for k in range(4)
    ]
    scalar = MultipointStreamingLDE(F, 64, points, backend=ScalarBackend(F))
    vector = MultipointStreamingLDE(F, 64, points)
    updates = mixed_updates(64, 500, seed=11)
    scalar.process_stream(updates)
    vector.process_stream_batched(updates, block=33)
    assert vector.values == scalar.values


@needs_numpy
@pytest.mark.parametrize("ell", [2, 3, 4])
def test_direct_evaluate_vectorized_matches_scalar(ell):
    rng = random.Random(13)
    d = 4
    point = [rng.randrange(F.p) for _ in range(d)]
    a = [rng.randrange(-100, 100) for _ in range(ell**d - 3)]
    scalar_value = StreamingLDE.direct_evaluate(
        F, a, ell, point, backend=ScalarBackend(F)
    )
    assert StreamingLDE.direct_evaluate(F, a, ell, point) == scalar_value


@needs_numpy
@pytest.mark.parametrize("ell", [2, 3, 5])
def test_chi_table_batch_matches_chi_table(ell):
    rng = random.Random(17)
    xs = [rng.randrange(F.p) for _ in range(8)] + list(range(ell)) + [0]
    assert chi_table_batch(F, ell, xs) == [chi_table(F, ell, x) for x in xs]


def test_chi_table_cache_consistency():
    # Repeated calls (cache hits) must keep returning fresh equal lists.
    first = chi_table(F, 2, 1234567)
    second = chi_table(F, 2, 1234567)
    assert first == second
    assert first is not second  # callers may mutate their copy
    second[0] = 0
    assert chi_table(F, 2, 1234567) == first


# -- protocol transcripts ----------------------------------------------------


def run_f2_with(backend_name):
    stream = uniform_frequency_stream(200, rng=random.Random(23))
    point = F.rand_vector(random.Random(29), 8)
    verifier = F2Verifier(F, 256, point=point)
    prover = F2Prover(F, 256, backend=get_backend(F, backend_name))
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process(i, delta)
    ch = Channel()
    result = run_f2(prover, verifier, ch)
    assert result.accepted
    return result, ch.transcript


@needs_numpy
def test_f2_transcript_identical_across_backends():
    scalar_result, scalar_tx = run_f2_with("scalar")
    vector_result, vector_tx = run_f2_with("vectorized")
    assert scalar_result.value == vector_result.value
    assert scalar_tx.messages == vector_tx.messages


def run_fk_with(backend_name, k=4):
    stream = uniform_frequency_stream(128, max_frequency=50,
                                      rng=random.Random(31))
    point = F.rand_vector(random.Random(37), 7)
    verifier = FkVerifier(F, 128, k, point=point)
    prover = FkProver(F, 128, k, backend=get_backend(F, backend_name))
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process(i, delta)
    ch = Channel()
    result = run_fk(prover, verifier, ch)
    assert result.accepted
    return result, ch.transcript


@needs_numpy
def test_fk_transcript_identical_across_backends():
    scalar_result, scalar_tx = run_fk_with("scalar")
    vector_result, vector_tx = run_fk_with("vectorized")
    assert scalar_result.value == vector_result.value
    assert scalar_tx.messages == vector_tx.messages


def run_subvector_with(backend_name, normalized):
    stream = uniform_frequency_stream(100, max_frequency=30,
                                      rng=random.Random(41))
    point = F.rand_vector(random.Random(43), 7)
    verifier = TreeHashVerifier(F, 128, point=point, normalized=normalized)
    prover = SubVectorProver(F, 128, normalized=normalized,
                             backend=get_backend(F, backend_name))
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process(i, delta)
    ch = Channel()
    result = run_subvector(prover, verifier, 10, 73, ch)
    assert result.accepted
    return result, ch.transcript


@needs_numpy
@pytest.mark.parametrize("normalized", [False, True])
def test_subvector_transcript_identical_across_backends(normalized):
    scalar_result, scalar_tx = run_subvector_with("scalar", normalized)
    vector_result, vector_tx = run_subvector_with("vectorized", normalized)
    assert scalar_result.value.entries == vector_result.value.entries
    assert scalar_tx.messages == vector_tx.messages


@needs_numpy
def test_f0_protocol_identical_across_backends(monkeypatch):
    stream = zipf_stream(64, 600, rng=random.Random(47))

    def run(backend_name):
        monkeypatch.setenv("REPRO_BACKEND", backend_name)
        ch = Channel()
        result = f0_protocol(stream, F, rng=random.Random(53), channel=ch)
        assert result.accepted
        return result.value, ch.transcript.messages

    scalar_value, scalar_msgs = run("scalar")
    vector_value, vector_msgs = run("vectorized")
    assert scalar_value == vector_value
    assert scalar_msgs == vector_msgs
    true_f0 = sum(1 for v in stream.sparse_frequencies().values() if v != 0)
    assert scalar_value == true_f0


# -- heavy hitters, sparse and tree-hash ingest (PR 3) ------------------------


def run_heavy_hitters_with(backend_name, low_space=False):
    from repro.core.heavy_hitters import (
        HeavyHittersProver,
        HeavyHittersVerifier,
        run_heavy_hitters,
    )

    stream = zipf_stream(256, 3000, rng=random.Random(61))
    be = get_backend(F, backend_name)
    verifier = HeavyHittersVerifier(F, 256, 0.02, rng=random.Random(67),
                                    backend=be)
    prover = HeavyHittersProver(F, 256, 0.02, backend=be)
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process(i, delta)
    ch = Channel()
    result = run_heavy_hitters(prover, verifier, ch, low_space=low_space)
    assert result.accepted
    return result, ch.transcript


@needs_numpy
@pytest.mark.parametrize("low_space", [False, True])
def test_heavy_hitters_transcript_identical_across_backends(low_space):
    scalar_result, scalar_tx = run_heavy_hitters_with("scalar", low_space)
    vector_result, vector_tx = run_heavy_hitters_with("vectorized", low_space)
    assert scalar_result.value == vector_result.value
    assert scalar_tx.messages == vector_tx.messages


@needs_numpy
def test_heavy_hitters_batched_ingest_matches_loop():
    from repro.core.heavy_hitters import HeavyHittersVerifier

    stream = zipf_stream(300, 2000, rng=random.Random(71))
    updates = list(stream.updates())
    point_rng = random.Random(73)
    r = F.rand_vector(point_rng, 9)
    s = F.rand_vector(point_rng, 9)
    loop = HeavyHittersVerifier(F, 300, 0.05, r=r, s=s,
                                backend=ScalarBackend(F))
    batched = HeavyHittersVerifier(F, 300, 0.05, r=r, s=s)
    loop.process_stream(updates)
    batched.process_stream_batched(updates, block=97)
    assert batched.root == loop.root
    assert batched.n == loop.n
    with pytest.raises(ValueError):
        batched.process_stream_batched([(300, 1)])
    with pytest.raises(ValueError):
        batched.process_stream_batched([], block=0)


@needs_numpy
@pytest.mark.parametrize("normalized", [False, True])
def test_tree_hash_batched_ingest_matches_loop(normalized):
    updates = mixed_updates(200, 1500, seed=79)
    point = F.rand_vector(random.Random(83), 8)
    loop = TreeHashVerifier(F, 200, point=point, normalized=normalized,
                            backend=ScalarBackend(F))
    batched = TreeHashVerifier(F, 200, point=point, normalized=normalized)
    loop.process_stream(updates)
    batched.process_stream_batched(updates, block=64)
    assert batched.root == loop.root
    with pytest.raises(ValueError):
        batched.process_stream_batched([(205, 1)])


def run_sparse_f2_with(backend_name, monkeypatch=None):
    from repro.core.sparse import SparseF2Prover

    if monkeypatch is not None:
        # Force the scatter path even below the size crossover.
        monkeypatch.setattr(SparseF2Prover, "VECTOR_MIN_KEYS", 0)
    u = 1 << 12
    updates = mixed_updates(u, 400, seed=87)
    point = F.rand_vector(random.Random(89), 12)
    verifier = F2Verifier(F, u, point=point)
    prover = SparseF2Prover(F, u, backend=get_backend(F, backend_name))
    for i, delta in updates:
        verifier.process(i, delta)
        prover.process(i, delta)
    ch = Channel()
    result = run_f2(prover, verifier, ch)
    assert result.accepted
    return result, ch.transcript


@needs_numpy
def test_sparse_f2_transcript_identical_across_backends(monkeypatch):
    scalar_result, scalar_tx = run_sparse_f2_with("scalar")
    vector_result, vector_tx = run_sparse_f2_with("vectorized", monkeypatch)
    assert scalar_result.value == vector_result.value
    assert scalar_tx.messages == vector_tx.messages


def run_sparse_subvector_with(backend_name, normalized, monkeypatch=None):
    from repro.core.sparse import SparseF2Prover, SparseSubVectorProver

    if monkeypatch is not None:
        monkeypatch.setattr(SparseF2Prover, "VECTOR_MIN_KEYS", 0)
    u = 1 << 11
    rng = random.Random(91)
    updates = [(rng.randrange(u), rng.randrange(1, 50)) for _ in range(120)]
    point = F.rand_vector(random.Random(93), 11)
    verifier = TreeHashVerifier(F, u, point=point, normalized=normalized)
    prover = SparseSubVectorProver(F, u, normalized=normalized,
                                   backend=get_backend(F, backend_name))
    for i, delta in updates:
        verifier.process(i, delta)
        prover.process(i, delta)
    ch = Channel()
    result = run_subvector(prover, verifier, 100, 1800, ch)
    assert result.accepted
    return result, ch.transcript


@needs_numpy
@pytest.mark.parametrize("normalized", [False, True])
def test_sparse_subvector_transcript_identical_across_backends(
    normalized, monkeypatch
):
    scalar_result, scalar_tx = run_sparse_subvector_with("scalar", normalized)
    vector_result, vector_tx = run_sparse_subvector_with(
        "vectorized", normalized, monkeypatch
    )
    assert scalar_result.value.entries == vector_result.value.entries
    assert scalar_tx.messages == vector_tx.messages


# -- sum-check point-buffer refactor ----------------------------------------


def test_sumcheck_buffer_reuse_matches_naive_enumeration():
    p = F.p
    rng = random.Random(59)
    coeffs = {}

    def f(point):
        # A little multilinear-ish polynomial keyed on the snapshot of the
        # point; verifies the buffer holds the right values at call time.
        key = tuple(int(v) % p for v in point)
        if key not in coeffs:
            coeffs[key] = rng.randrange(1000)
        return (sum((i + 1) * v for i, v in enumerate(key)) + coeffs[key]) % p

    n = 5
    naive = sum(
        f([(mask >> j) & 1 for j in range(n)]) for mask in range(1 << n)
    ) % p
    assert boolean_sum(F, f, n) == naive

    prefix = [rng.randrange(p) for _ in range(2)]
    msg = round_message(F, f, n, prefix, degree=2)
    expected = []
    for c in range(3):
        acc = 0
        for mask in range(1 << (n - 3)):
            point = list(prefix) + [c] + [
                (mask >> t) & 1 for t in range(n - 3)
            ]
            acc += f(point)
        expected.append(acc % p)
    assert msg == expected


def test_round_message_full_prefix():
    # j = num_vars - 1: no suffix variables at all.
    def f(point):
        return (3 * point[0] + point[1]) % F.p

    msg = round_message(F, f, 2, [5], degree=1)
    assert msg == [(15 + 0) % F.p, (15 + 1) % F.p]


# -- GKR (layer sum-check engine + full protocol) ----------------------------


def _random_layered_circuit(seed):
    """A small irregular circuit exercising add/mul mixes and fan-out."""
    from repro.gkr.circuits import ADD, MUL, Gate, LayeredCircuit

    rng = random.Random(seed)
    # Wires of layer i index layer i+1 (or the input layer at the bottom).
    sizes = [2, 4, 8, 16]
    layers = []
    for li, width in enumerate(sizes[:-1]):
        wire_range = sizes[li + 1]
        layers.append(
            [
                Gate(rng.choice([ADD, MUL]), rng.randrange(wire_range),
                     rng.randrange(wire_range))
                for _ in range(width)
            ]
        )
    return LayeredCircuit(layers, input_size=16)


@needs_numpy
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_layer_sumcheck_matches_bruteforce_reference(seed):
    """LayerSumcheck (both backends) vs the brute-force closure prover."""
    from repro.gkr.circuits import ADD, num_vars
    from repro.gkr.mle import eq_table, mle_eval, pad_to_power_of_two
    from repro.gkr.sumcheck import LayerSumcheck
    from repro.field.vectorized import canonical_table

    rng = random.Random(100 + seed)
    circuit = _random_layered_circuit(seed)
    inputs = [rng.randrange(50) for _ in range(16)]
    values = circuit.evaluate(F, inputs)
    i = rng.randrange(circuit.depth)
    gates = circuit.layers[i]
    b_next = num_vars(circuit.layer_size(i + 1))
    z = F.rand_vector(rng, num_vars(circuit.layer_size(i)))
    chal = F.rand_vector(rng, 2 * b_next)
    table_vals = pad_to_power_of_two(values[i + 1])
    p = F.p

    # Brute-force reference: enumerate the layer polynomial directly.
    from repro.gkr.mle import eq_eval
    from repro.gkr.sumcheck import round_message

    eq_z = [eq_eval(F, g, num_vars(len(gates)), z) for g in range(len(gates))]

    def layer_poly(pt):
        x = pt[:b_next]
        y = pt[b_next:]
        wx = mle_eval(F, table_vals, x)
        wy = mle_eval(F, table_vals, y)
        add_acc = 0
        mult_acc = 0
        for gidx, gate in enumerate(gates):
            w = (
                eq_z[gidx]
                * eq_eval(F, gate.left, b_next, x) % p
                * eq_eval(F, gate.right, b_next, y) % p
            )
            if gate.op == ADD:
                add_acc += w
            else:
                mult_acc += w
        return (add_acc * (wx + wy) + mult_acc * wx * wy) % p

    expected = []
    prefix = []
    for j in range(2 * b_next):
        expected.append(round_message(F, layer_poly, 2 * b_next, prefix, 2))
        prefix.append(chal[j])

    for backend_name in ("scalar", "vectorized"):
        be = get_backend(F, backend_name)
        ls = LayerSumcheck(
            F, gates, b_next,
            eq_table(F, z, backend=be),
            canonical_table(be, F, table_vals),
            backend=be,
        )
        got = []
        for j in range(2 * b_next):
            got.append([int(v) for v in ls.round_message()])
            ls.receive_challenge(chal[j])
        assert got == expected, backend_name
        wx, wy = ls.final_claims()
        assert wx == mle_eval(F, table_vals, chal[:b_next])
        assert wy == mle_eval(F, table_vals, chal[b_next:])
        from repro.gkr.protocol import wiring_mle_at

        assert ls.wiring_values() == wiring_mle_at(
            F, gates, num_vars(len(gates)), b_next, z,
            chal[:b_next], chal[b_next:],
        )


def run_gkr_with(backend_name):
    from repro.gkr.circuits import f2_circuit
    from repro.gkr.protocol import GKRProver, StreamingGKRVerifier, run_gkr

    stream = uniform_frequency_stream(64, max_frequency=20,
                                      rng=random.Random(61))
    circuit = f2_circuit(64)
    backend = get_backend(F, backend_name)
    verifier = StreamingGKRVerifier(F, circuit, rng=random.Random(67),
                                    backend=backend)
    prover = GKRProver(F, circuit, backend=backend)
    verifier.process_stream(stream.updates())
    prover.process_stream(stream.updates())
    ch = Channel()
    result = run_gkr(prover, verifier, ch)
    assert result.accepted, result.reason
    return result, ch.transcript


@needs_numpy
def test_gkr_transcript_identical_across_backends():
    scalar_result, scalar_tx = run_gkr_with("scalar")
    vector_result, vector_tx = run_gkr_with("vectorized")
    assert scalar_result.value == vector_result.value
    assert scalar_tx.messages == vector_tx.messages


@needs_numpy
def test_eq_table_matches_eq_eval():
    from repro.gkr.mle import eq_eval, eq_table

    rng = random.Random(71)
    point = F.rand_vector(rng, 5)
    scalar = eq_table(F, point, backend=ScalarBackend(F))
    vector = eq_table(F, point)
    expected = [eq_eval(F, idx, 5, point) for idx in range(32)]
    assert list(scalar) == expected
    assert [int(v) for v in vector] == expected


@needs_numpy
def test_mle_helpers_identical_across_backends():
    from repro.gkr.mle import mle_eval, pad_to_power_of_two, restrict_to_line

    rng = random.Random(73)
    values = [rng.randrange(-50, 50) for _ in range(13)]  # padded to 16
    point = F.rand_vector(rng, 4)
    be = get_backend(F, "vectorized")
    assert mle_eval(F, values, point) == mle_eval(F, values, point, backend=be)
    padded = pad_to_power_of_two(values, backend=be)
    assert [int(v) for v in padded] == [v % F.p for v in
                                        pad_to_power_of_two(values)]
    start = F.rand_vector(rng, 4)
    end = F.rand_vector(rng, 4)
    assert restrict_to_line(F, values, start, end, 5, backend=be) == \
        restrict_to_line(F, values, start, end, 5)


@needs_numpy
def test_circuit_evaluate_identical_across_backends():
    from repro.gkr.circuits import f2_circuit

    rng = random.Random(79)
    circuit = f2_circuit(32)
    inputs = [rng.randrange(-100, 100) for _ in range(32)]
    scalar = circuit.evaluate(F, inputs)
    vector = circuit.evaluate(F, inputs, backend=get_backend(F, "vectorized"))
    assert scalar == vector


# -- distributed (sharded) ----------------------------------------------------


def run_sharded_with(backend_name, workers=4):
    from repro.distributed.sharded import DistributedF2Prover

    stream = uniform_frequency_stream(200, max_frequency=40,
                                      rng=random.Random(83))
    point = F.rand_vector(random.Random(89), 8)
    verifier = F2Verifier(F, 256, point=point)
    prover = DistributedF2Prover(F, 256, num_workers=workers,
                                 backend=get_backend(F, backend_name))
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process(i, delta)
    ch = Channel()
    result = run_f2(prover, verifier, ch)
    assert result.accepted
    return result, ch.transcript


@needs_numpy
@pytest.mark.parametrize("workers", [1, 4, 8])
def test_sharded_transcript_identical_across_backends(workers):
    scalar_result, scalar_tx = run_sharded_with("scalar", workers)
    vector_result, vector_tx = run_sharded_with("vectorized", workers)
    assert scalar_result.value == vector_result.value
    assert scalar_tx.messages == vector_tx.messages


# -- batched multiquery --------------------------------------------------------


def run_batch_with(backend_name):
    from repro.core.multiquery import run_batch_range_sum
    from repro.core.range_sum import RangeSumProver, RangeSumVerifier

    stream = uniform_frequency_stream(128, max_frequency=25,
                                      rng=random.Random(97))
    point = F.rand_vector(random.Random(101), 7)
    verifier = RangeSumVerifier(F, 128, point=point)
    prover = RangeSumProver(F, 128)
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process_a(i, delta)
    ch = Channel()
    results = run_batch_range_sum(
        prover, verifier, [(0, 30), (31, 90), (5, 127), (64, 64)],
        ch, backend=get_backend(F, backend_name),
    )
    assert all(r.accepted for r in results)
    return results, ch


@needs_numpy
def test_batch_multiquery_identical_across_backends():
    scalar_results, scalar_ch = run_batch_with("scalar")
    vector_results, vector_ch = run_batch_with("vectorized")
    assert [r.value for r in scalar_results] == \
        [r.value for r in vector_results]
    assert scalar_ch.transcript.messages == vector_ch.transcript.messages
    assert scalar_ch.query_words == vector_ch.query_words
    assert scalar_ch.shared_words == vector_ch.shared_words


# -- multipoint streaming LDE edge cases --------------------------------------


def _multipoint_pair(u=48, npoints=3, seed=103):
    rng = random.Random(seed)
    d = StreamingLDE(F, u, ell=2, rng=rng,
                     backend=ScalarBackend(F)).d
    points = [F.rand_vector(random.Random(seed + k), d)
              for k in range(npoints)]
    scalar = MultipointStreamingLDE(F, u, points, backend=ScalarBackend(F))
    vector = MultipointStreamingLDE(F, u, points)
    return scalar, vector


@needs_numpy
def test_multipoint_batched_single_update_blocks():
    scalar, vector = _multipoint_pair()
    updates = mixed_updates(48, 37, seed=107)
    scalar.process_stream(updates)
    vector.process_stream_batched(updates, block=1)  # one update per block
    assert vector.values == scalar.values


@needs_numpy
def test_multipoint_batched_block_larger_than_stream():
    scalar, vector = _multipoint_pair()
    updates = mixed_updates(48, 9, seed=109)
    scalar.process_stream(updates)
    vector.process_stream_batched(updates, block=10_000)
    assert vector.values == scalar.values


@needs_numpy
def test_multipoint_batched_duplicate_indices_within_block():
    scalar, vector = _multipoint_pair()
    # Every key repeats, including insert-then-delete pairs in one block.
    updates = [(7, 5), (7, -5), (3, 2), (3, 9), (3, -1), (47, 1), (47, 10)]
    scalar.process_stream(updates)
    vector.process_stream_batched(updates, block=len(updates))
    assert vector.values == scalar.values
    assert scalar.evaluators[0].updates_processed == len(updates)
    assert vector.evaluators[0].updates_processed == len(updates)


@needs_numpy
def test_multipoint_batched_empty_and_invalid():
    scalar, vector = _multipoint_pair()
    vector.process_stream_batched([], block=4)
    assert vector.values == scalar.values  # all zero
    with pytest.raises(ValueError):
        vector.process_stream_batched([(48, 1)])
    with pytest.raises(ValueError):
        vector.process_stream_batched([(0, 1)], block=0)
