"""Cross-backend equivalence: scalar and vectorized paths are bit-identical.

The acceptance bar for the vectorized engine: every protocol produces the
*same transcript* whichever backend the prover runs on, and the batched
LDE paths produce byte-identical values to the per-update loop.  These
tests run on every CI leg; without NumPy the vectorized cases are skipped
and the scalar reference still exercises the shared API.
"""

from __future__ import annotations

import random

import pytest

from repro.comm.channel import Channel
from repro.core.f2 import F2Prover, F2Verifier, run_f2
from repro.core.fk import FkProver, FkVerifier, run_fk
from repro.core.frequency_based import f0_protocol
from repro.core.subvector import SubVectorProver, TreeHashVerifier, run_subvector
from repro.field.modular import DEFAULT_FIELD as F
from repro.field.vectorized import HAVE_NUMPY, ScalarBackend, get_backend
from repro.gkr.sumcheck import boolean_sum, round_message
from repro.lde.chi import chi_table, chi_table_batch
from repro.lde.streaming import MultipointStreamingLDE, StreamingLDE
from repro.streams.generators import uniform_frequency_stream, zipf_stream

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def mixed_updates(u, n, seed=0):
    """Insertions and deletions with large and small deltas."""
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        out.append((rng.randrange(u), rng.randrange(-10**6, 10**6)))
    return out


# -- streaming LDE -----------------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("u,ell,block", [
    (256, 2, 64), (256, 2, 37), (100, 3, 11), (625, 5, 4096), (17, 4, 1),
])
def test_batched_lde_identical_to_scalar_loop(u, ell, block):
    point_rng = random.Random(99)
    scalar = StreamingLDE(F, u, ell=ell, rng=point_rng,
                          backend=ScalarBackend(F))
    vector = StreamingLDE(F, u, ell=ell, point=scalar.point)
    updates = mixed_updates(u, 1000, seed=u + ell)
    scalar.process_stream(updates)
    vector.process_stream_batched(updates, block=block)
    assert vector.value == scalar.value
    assert vector.updates_processed == scalar.updates_processed


@needs_numpy
def test_batched_lde_accepts_iterators_and_partial_blocks():
    scalar = StreamingLDE(F, 50, rng=random.Random(1),
                          backend=ScalarBackend(F))
    vector = StreamingLDE(F, 50, point=scalar.point)
    updates = mixed_updates(50, 101, seed=5)
    scalar.process_stream(iter(updates))
    vector.process_stream_batched(iter(updates), block=25)  # 101 = 4*25 + 1
    assert vector.value == scalar.value


@needs_numpy
def test_batched_lde_rejects_out_of_range_keys():
    lde = StreamingLDE(F, 32, rng=random.Random(2))
    with pytest.raises(ValueError):
        lde.process_stream_batched([(0, 1), (32, 1)])
    with pytest.raises(ValueError):
        lde.process_stream_batched([(-1, 1)])


def test_batched_lde_scalar_backend_fallback():
    scalar = StreamingLDE(F, 64, rng=random.Random(3),
                          backend=ScalarBackend(F))
    reference = StreamingLDE(F, 64, point=scalar.point,
                             backend=ScalarBackend(F))
    updates = mixed_updates(64, 200, seed=7)
    reference.process_stream(updates)
    scalar.process_stream_batched(updates)  # falls back to the scalar loop
    assert scalar.value == reference.value
    assert scalar.updates_processed == reference.updates_processed


@needs_numpy
def test_multipoint_batched_matches_scalar():
    points = [
        [random.Random(k).randrange(F.p) for _ in range(6)] for k in range(4)
    ]
    scalar = MultipointStreamingLDE(F, 64, points, backend=ScalarBackend(F))
    vector = MultipointStreamingLDE(F, 64, points)
    updates = mixed_updates(64, 500, seed=11)
    scalar.process_stream(updates)
    vector.process_stream_batched(updates, block=33)
    assert vector.values == scalar.values


@needs_numpy
@pytest.mark.parametrize("ell", [2, 3, 4])
def test_direct_evaluate_vectorized_matches_scalar(ell):
    rng = random.Random(13)
    d = 4
    point = [rng.randrange(F.p) for _ in range(d)]
    a = [rng.randrange(-100, 100) for _ in range(ell**d - 3)]
    scalar_value = StreamingLDE.direct_evaluate(
        F, a, ell, point, backend=ScalarBackend(F)
    )
    assert StreamingLDE.direct_evaluate(F, a, ell, point) == scalar_value


@needs_numpy
@pytest.mark.parametrize("ell", [2, 3, 5])
def test_chi_table_batch_matches_chi_table(ell):
    rng = random.Random(17)
    xs = [rng.randrange(F.p) for _ in range(8)] + list(range(ell)) + [0]
    assert chi_table_batch(F, ell, xs) == [chi_table(F, ell, x) for x in xs]


def test_chi_table_cache_consistency():
    # Repeated calls (cache hits) must keep returning fresh equal lists.
    first = chi_table(F, 2, 1234567)
    second = chi_table(F, 2, 1234567)
    assert first == second
    assert first is not second  # callers may mutate their copy
    second[0] = 0
    assert chi_table(F, 2, 1234567) == first


# -- protocol transcripts ----------------------------------------------------


def run_f2_with(backend_name):
    stream = uniform_frequency_stream(200, rng=random.Random(23))
    point = F.rand_vector(random.Random(29), 8)
    verifier = F2Verifier(F, 256, point=point)
    prover = F2Prover(F, 256, backend=get_backend(F, backend_name))
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process(i, delta)
    ch = Channel()
    result = run_f2(prover, verifier, ch)
    assert result.accepted
    return result, ch.transcript


@needs_numpy
def test_f2_transcript_identical_across_backends():
    scalar_result, scalar_tx = run_f2_with("scalar")
    vector_result, vector_tx = run_f2_with("vectorized")
    assert scalar_result.value == vector_result.value
    assert scalar_tx.messages == vector_tx.messages


def run_fk_with(backend_name, k=4):
    stream = uniform_frequency_stream(128, max_frequency=50,
                                      rng=random.Random(31))
    point = F.rand_vector(random.Random(37), 7)
    verifier = FkVerifier(F, 128, k, point=point)
    prover = FkProver(F, 128, k, backend=get_backend(F, backend_name))
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process(i, delta)
    ch = Channel()
    result = run_fk(prover, verifier, ch)
    assert result.accepted
    return result, ch.transcript


@needs_numpy
def test_fk_transcript_identical_across_backends():
    scalar_result, scalar_tx = run_fk_with("scalar")
    vector_result, vector_tx = run_fk_with("vectorized")
    assert scalar_result.value == vector_result.value
    assert scalar_tx.messages == vector_tx.messages


def run_subvector_with(backend_name, normalized):
    stream = uniform_frequency_stream(100, max_frequency=30,
                                      rng=random.Random(41))
    point = F.rand_vector(random.Random(43), 7)
    verifier = TreeHashVerifier(F, 128, point=point, normalized=normalized)
    prover = SubVectorProver(F, 128, normalized=normalized,
                             backend=get_backend(F, backend_name))
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process(i, delta)
    ch = Channel()
    result = run_subvector(prover, verifier, 10, 73, ch)
    assert result.accepted
    return result, ch.transcript


@needs_numpy
@pytest.mark.parametrize("normalized", [False, True])
def test_subvector_transcript_identical_across_backends(normalized):
    scalar_result, scalar_tx = run_subvector_with("scalar", normalized)
    vector_result, vector_tx = run_subvector_with("vectorized", normalized)
    assert scalar_result.value.entries == vector_result.value.entries
    assert scalar_tx.messages == vector_tx.messages


@needs_numpy
def test_f0_protocol_identical_across_backends(monkeypatch):
    stream = zipf_stream(64, 600, rng=random.Random(47))

    def run(backend_name):
        monkeypatch.setenv("REPRO_BACKEND", backend_name)
        ch = Channel()
        result = f0_protocol(stream, F, rng=random.Random(53), channel=ch)
        assert result.accepted
        return result.value, ch.transcript.messages

    scalar_value, scalar_msgs = run("scalar")
    vector_value, vector_msgs = run("vectorized")
    assert scalar_value == vector_value
    assert scalar_msgs == vector_msgs
    true_f0 = sum(1 for v in stream.sparse_frequencies().values() if v != 0)
    assert scalar_value == true_f0


# -- sum-check point-buffer refactor ----------------------------------------


def test_sumcheck_buffer_reuse_matches_naive_enumeration():
    p = F.p
    rng = random.Random(59)
    coeffs = {}

    def f(point):
        # A little multilinear-ish polynomial keyed on the snapshot of the
        # point; verifies the buffer holds the right values at call time.
        key = tuple(int(v) % p for v in point)
        if key not in coeffs:
            coeffs[key] = rng.randrange(1000)
        return (sum((i + 1) * v for i, v in enumerate(key)) + coeffs[key]) % p

    n = 5
    naive = sum(
        f([(mask >> j) & 1 for j in range(n)]) for mask in range(1 << n)
    ) % p
    assert boolean_sum(F, f, n) == naive

    prefix = [rng.randrange(p) for _ in range(2)]
    msg = round_message(F, f, n, prefix, degree=2)
    expected = []
    for c in range(3):
        acc = 0
        for mask in range(1 << (n - 3)):
            point = list(prefix) + [c] + [
                (mask >> t) & 1 for t in range(n - 3)
            ]
            acc += f(point)
        expected.append(acc % p)
    assert msg == expected


def test_round_message_full_prefix():
    # j = num_vars - 1: no suffix variables at all.
    def f(point):
        return (3 * point[0] + point[1]) % F.p

    msg = round_message(F, f, 2, [5], degree=1)
    assert msg == [(15 + 0) % F.p, (15 + 1) % F.p]
