"""Tests for repro.lde.streaming — Theorem 1 machinery."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.modular import DEFAULT_FIELD
from repro.lde.streaming import (
    MultipointStreamingLDE,
    StreamingLDE,
    dimension_for,
)

F = DEFAULT_FIELD

updates_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63),
              st.integers(min_value=-50, max_value=50)),
    max_size=40,
)


def test_dimension_for():
    assert dimension_for(1, 2) == 1
    assert dimension_for(2, 2) == 1
    assert dimension_for(3, 2) == 2
    assert dimension_for(64, 2) == 6
    assert dimension_for(65, 2) == 7
    assert dimension_for(9, 3) == 2
    assert dimension_for(10, 3) == 3


def test_dimension_for_validation():
    with pytest.raises(ValueError):
        dimension_for(0, 2)
    with pytest.raises(ValueError):
        dimension_for(4, 1)


@given(updates_strategy)
def test_streaming_matches_direct_binary(updates):
    rng = random.Random(5)
    lde = StreamingLDE(F, 64, ell=2, rng=rng)
    a = [0] * 64
    for i, delta in updates:
        lde.update(i, delta)
        a[i] += delta
    assert lde.value == StreamingLDE.direct_evaluate(F, a, 2, lde.point)


@pytest.mark.parametrize("ell", [2, 3, 4])
def test_streaming_matches_direct_other_bases(ell):
    rng = random.Random(6)
    u = ell**3
    lde = StreamingLDE(F, u, ell=ell, rng=rng)
    a = [0] * u
    gen = random.Random(7)
    for _ in range(50):
        i = gen.randrange(u)
        delta = gen.randint(-10, 10)
        lde.update(i, delta)
        a[i] += delta
    assert lde.value == StreamingLDE.direct_evaluate(F, a, ell, lde.point)


def test_lde_agrees_with_vector_on_grid_points():
    # f_a(v) = a_v for v on the grid: evaluate the LDE at integer points.
    a = [3, 1, 4, 1, 5, 9, 2, 6]
    for i, ai in enumerate(a):
        bits = [(i >> j) & 1 for j in range(3)]
        value = StreamingLDE.direct_evaluate(F, a, 2, bits)
        assert value == ai % F.p


@given(updates_strategy, updates_strategy)
def test_linearity(u1, u2):
    """f_{a+b}(r) = f_a(r) + f_b(r): the property making streaming work."""
    rng = random.Random(8)
    point = F.rand_vector(rng, 6)
    la = StreamingLDE(F, 64, point=point)
    lb = StreamingLDE(F, 64, point=point)
    lab = StreamingLDE(F, 64, point=point)
    for i, delta in u1:
        la.update(i, delta)
        lab.update(i, delta)
    for i, delta in u2:
        lb.update(i, delta)
        lab.update(i, delta)
    assert lab.value == F.add(la.value, lb.value)


def test_update_order_irrelevant():
    rng = random.Random(9)
    point = F.rand_vector(rng, 4)
    updates = [(3, 5), (7, -2), (3, 1), (0, 10)]
    forward = StreamingLDE(F, 16, point=point)
    backward = StreamingLDE(F, 16, point=point)
    for i, d in updates:
        forward.update(i, d)
    for i, d in reversed(updates):
        backward.update(i, d)
    assert forward.value == backward.value


def test_deletion_cancels_insertion():
    rng = random.Random(10)
    lde = StreamingLDE(F, 32, rng=rng)
    lde.update(11, 7)
    lde.update(11, -7)
    assert lde.value == 0


def test_key_out_of_universe_rejected():
    lde = StreamingLDE(F, 16, rng=random.Random(1))
    with pytest.raises(ValueError):
        lde.update(16, 1)
    with pytest.raises(ValueError):
        lde.update(-1, 1)


def test_explicit_point_used():
    point = [5, 6, 7]
    lde = StreamingLDE(F, 8, point=point)
    assert lde.point == point
    lde.update(7, 1)  # bits (1,1,1): chi = 5*6*7
    assert lde.value == 5 * 6 * 7 % F.p


def test_point_dimension_validated():
    with pytest.raises(ValueError):
        StreamingLDE(F, 8, point=[1, 2])


def test_requires_point_or_rng():
    with pytest.raises(ValueError):
        StreamingLDE(F, 8)


def test_space_accounting():
    lde = StreamingLDE(F, 1 << 20, rng=random.Random(2))
    assert lde.space_words == 21  # d + 1 = 20 + 1
    assert lde.space_words_with_tables == 21 + 40


def test_updates_processed_counter():
    lde = StreamingLDE(F, 8, rng=random.Random(3))
    lde.process_stream([(0, 1), (1, 2), (2, 3)])
    assert lde.updates_processed == 3


def test_multipoint_tracks_each_point():
    rng = random.Random(4)
    points = [F.rand_vector(rng, 4) for _ in range(3)]
    multi = MultipointStreamingLDE(F, 16, points)
    singles = [StreamingLDE(F, 16, point=pt) for pt in points]
    for i, delta in [(0, 3), (5, -1), (15, 4)]:
        multi.update(i, delta)
        for s in singles:
            s.update(i, delta)
    assert multi.values == [s.value for s in singles]
    assert multi.space_words == sum(s.space_words for s in singles)
