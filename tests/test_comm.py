"""Tests for repro.comm (transcripts, channels, tamper hooks)."""

from __future__ import annotations

import pytest

from repro.comm.channel import (
    Channel,
    drop_last_word,
    flip_word,
    replace_payload,
)
from repro.comm.transcript import PROVER, VERIFIER, Message, Transcript


def test_message_word_count():
    m = Message(PROVER, 0, "g1", (1, 2, 3))
    assert m.payload_words == 3


def test_transcript_accounting():
    t = Transcript()
    t.record(PROVER, 0, "g1", [1, 2, 3])
    t.record(VERIFIER, 0, "r1", [9])
    t.record(PROVER, 1, "g2", [4, 5, 6])
    assert t.rounds == 2
    assert t.total_words == 7
    assert t.prover_words == 6
    assert t.verifier_words == 1
    assert t.total_bytes(8) == 56
    assert len(t) == 3


def test_transcript_rejects_unknown_sender():
    with pytest.raises(ValueError):
        Transcript().record("eavesdropper", 0, "x", [])


def test_words_by_label():
    t = Transcript()
    t.record(PROVER, 0, "g", [1, 2])
    t.record(PROVER, 1, "g", [3])
    t.record(VERIFIER, 0, "r", [4])
    assert t.words_by_label() == {"g": 3, "r": 1}


def test_messages_from():
    t = Transcript()
    t.record(PROVER, 0, "a", [1])
    t.record(VERIFIER, 0, "b", [2])
    assert [m.label for m in t.messages_from(PROVER)] == ["a"]
    assert [m.label for m in t.messages_from(VERIFIER)] == ["b"]


def test_empty_transcript():
    t = Transcript()
    assert t.rounds == 0
    assert t.total_words == 0


def test_summary_format():
    t = Transcript()
    t.record(PROVER, 0, "g", [1, 2])
    text = t.summary(8)
    assert "rounds=1" in text and "bytes=16" in text


def test_channel_records_both_directions():
    ch = Channel()
    ch.prover_says(0, "g1", [5, 6])
    ch.verifier_says(0, "r1", [7])
    assert ch.transcript.total_words == 3
    assert ch.tampered_messages == 0


def test_channel_delivers_payload_unchanged_without_tamper():
    ch = Channel()
    assert ch.prover_says(0, "g", [1, 2, 3]) == [1, 2, 3]


def test_flip_word_hook():
    ch = Channel(tamper=flip_word(round_index=1, position=0, offset=10))
    assert ch.prover_says(0, "g1", [1, 2]) == [1, 2]
    assert ch.prover_says(1, "g2", [1, 2]) == [11, 2]
    assert ch.tampered_messages == 1
    # The transcript records what was delivered.
    assert ch.transcript.messages[-1].payload == (11, 2)


def test_flip_word_position_wraps():
    ch = Channel(tamper=flip_word(round_index=0, position=5, offset=1))
    assert ch.prover_says(0, "g", [1, 2, 3]) == [1, 2, 4]


def test_flip_word_empty_payload():
    ch = Channel(tamper=flip_word(round_index=0))
    assert ch.prover_says(0, "g", []) == []


def test_drop_last_word_hook():
    ch = Channel(tamper=drop_last_word(round_index=0))
    assert ch.prover_says(0, "g", [1, 2, 3]) == [1, 2]


def test_replace_payload_hook():
    ch = Channel(tamper=replace_payload(round_index=2, payload=[9, 9]))
    assert ch.prover_says(2, "g", [1]) == [9, 9]
    assert ch.prover_says(3, "g", [1]) == [1]


def test_verifier_messages_never_tampered():
    ch = Channel(tamper=flip_word(round_index=0, offset=100))
    assert ch.verifier_says(0, "r", [1]) == [1]
