"""Tests for the reporting queries (Section 4.2, Corollary 1)."""

from __future__ import annotations

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.reporting import (
    ReportingProver,
    build_reporting_session,
    dictionary_get,
    index_query,
    predecessor_query,
    range_query,
    successor_query,
)
from repro.core.subvector import TreeHashVerifier
from repro.field.modular import DEFAULT_FIELD
from repro.streams.kvstore import OutsourcedKVStore
from repro.streams.model import Stream

F = DEFAULT_FIELD


def session(stream, seed=0):
    return build_reporting_session(stream, F, rng=random.Random(seed))


# -- INDEX ---------------------------------------------------------------------


def test_index_present_key():
    stream = Stream(32, [(7, 3)])
    prover, verifier = session(stream)
    result = index_query(prover, verifier, 7)
    assert result.accepted and result.value == 3


def test_index_absent_key_is_zero():
    stream = Stream(32, [(7, 3)])
    prover, verifier = session(stream)
    result = index_query(prover, verifier, 8)
    assert result.accepted and result.value == 0


def test_index_bit_semantics():
    """INDEX over a bit stream: the problem as defined in Section 1.1."""
    bits = [1, 0, 1, 1, 0, 0, 1, 0]
    stream = Stream.from_items(8, [i for i, b in enumerate(bits) if b])
    for q, expected in enumerate(bits):
        prover, verifier = session(stream, seed=q)
        result = index_query(prover, verifier, q)
        assert result.accepted and result.value == expected


def test_index_lying_prover_rejected():
    stream = Stream(32, [(7, 3)])
    prover, verifier = session(stream)
    prover.freq[7] = 4
    assert not index_query(prover, verifier, 7).accepted


# -- DICTIONARY -----------------------------------------------------------------


def test_dictionary_found_and_not_found():
    store = OutsourcedKVStore(64)
    store.put_many([(5, 0), (9, 41)])
    prover, verifier = session(store.stream)
    result = dictionary_get(prover, verifier, 9)
    assert result.accepted
    assert result.value.found and result.value.value == 41


def test_dictionary_value_zero_distinguished_from_absent():
    """The +1 encoding: stored value 0 is 'found', absent is 'not found'."""
    store = OutsourcedKVStore(64)
    store.put(5, 0)
    prover, verifier = session(store.stream, seed=1)
    found = dictionary_get(prover, verifier, 5)
    assert found.accepted and found.value.found and found.value.value == 0

    prover, verifier = session(store.stream, seed=2)
    absent = dictionary_get(prover, verifier, 6)
    assert absent.accepted and not absent.value.found
    assert absent.value.value is None


def test_dictionary_lying_value_rejected():
    store = OutsourcedKVStore(64)
    store.put(5, 10)
    prover, verifier = session(store.stream, seed=3)
    prover.freq[5] = 99
    assert not dictionary_get(prover, verifier, 5).accepted


# -- PREDECESSOR / SUCCESSOR ------------------------------------------------------


@given(st.sets(st.integers(min_value=0, max_value=63), min_size=1,
               max_size=15),
       st.integers(min_value=0, max_value=63))
def test_predecessor_random(keys, q):
    stream = Stream.from_items(64, sorted(keys))
    prover, verifier = session(stream, seed=q)
    result = predecessor_query(prover, verifier, q)
    assert result.accepted
    expected = max((k for k in keys if k <= q), default=None)
    assert result.value == expected


@given(st.sets(st.integers(min_value=0, max_value=63), min_size=1,
               max_size=15),
       st.integers(min_value=0, max_value=63))
def test_successor_random(keys, q):
    stream = Stream.from_items(64, sorted(keys))
    prover, verifier = session(stream, seed=q + 1000)
    result = successor_query(prover, verifier, q)
    assert result.accepted
    expected = min((k for k in keys if k >= q), default=None)
    assert result.value == expected


def test_predecessor_exact_hit():
    stream = Stream.from_items(32, [10, 20])
    prover, verifier = session(stream)
    result = predecessor_query(prover, verifier, 20)
    assert result.accepted and result.value == 20


def test_predecessor_none():
    stream = Stream.from_items(32, [10])
    prover, verifier = session(stream)
    result = predecessor_query(prover, verifier, 5)
    assert result.accepted and result.value is None


def test_predecessor_lying_claim_too_low_rejected():
    """Claiming a too-small predecessor exposes the real key in the range."""
    stream = Stream.from_items(64, [10, 20])
    prover, verifier = session(stream)
    prover.claim_predecessor = lambda q: (1, 10)  # truth would be 20
    result = predecessor_query(prover, verifier, 25)
    assert not result.accepted


def test_predecessor_lying_claim_absent_key_rejected():
    """Claiming an absent key fails because a_q' = 0 in the sub-vector."""
    stream = Stream.from_items(64, [10])
    prover, verifier = session(stream)
    prover.claim_predecessor = lambda q: (1, 15)
    result = predecessor_query(prover, verifier, 25)
    assert not result.accepted


def test_predecessor_false_none_claim_rejected():
    stream = Stream.from_items(64, [10])
    prover, verifier = session(stream)
    prover.claim_predecessor = lambda q: (0, 0)
    result = predecessor_query(prover, verifier, 25)
    assert not result.accepted


def test_successor_lying_rejected():
    stream = Stream.from_items(64, [10, 20])
    prover, verifier = session(stream)
    prover.claim_successor = lambda q: (1, 20)  # truth is 10
    result = successor_query(prover, verifier, 5)
    assert not result.accepted


def test_predecessor_communication_logarithmic():
    """k = 1 nonzero entry: cost stays O(log u) despite the wide range."""
    u = 1 << 12
    stream = Stream.from_items(u, [0, 100])
    prover, verifier = session(stream)
    result = predecessor_query(prover, verifier, u - 1)
    assert result.accepted and result.value == 100
    assert result.transcript.total_words <= 2 + 2 + 11 + 2 * 2 + 4 * 12


# -- RANGE QUERY --------------------------------------------------------------------


def test_range_query_matches_oracle():
    stream = Stream.from_items(64, [3, 3, 8, 20, 40])
    prover, verifier = session(stream)
    result = range_query(prover, verifier, 3, 30)
    assert result.accepted
    assert result.value.as_dict() == {3: 2, 8: 1, 20: 1}


def test_range_query_kv_store_scan():
    store = OutsourcedKVStore(128)
    store.put_many([(10, 3), (11, 0), (64, 9)])
    prover, verifier = session(store.stream)
    result = range_query(prover, verifier, 10, 20)
    assert result.accepted
    # Decode the +1 shift back to stored values.
    decoded = {k: v - 1 for k, v in result.value.entries}
    assert decoded == {10: 3, 11: 0}


def test_reporting_prover_claims():
    prover = ReportingProver(F, 16)
    prover.process_stream([(3, 1), (9, 2)])
    assert prover.claim_predecessor(8) == (1, 3)
    assert prover.claim_predecessor(2) == (0, 0)
    assert prover.claim_successor(4) == (1, 9)
    assert prover.claim_successor(10) == (0, 0)


def test_session_builder_feeds_both_parties():
    stream = Stream.from_items(32, [5])
    prover, verifier = session(stream)
    assert isinstance(verifier, TreeHashVerifier)
    assert prover.freq[5] == 1
    assert verifier.root != 0
