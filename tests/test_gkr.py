"""Tests for the GKR protocol with a streaming verifier (Thm 3 / App. A)."""

from __future__ import annotations

import random

import pytest

from repro.comm.channel import Channel, flip_word
from repro.field.modular import DEFAULT_FIELD
from repro.gkr.circuits import (
    ADD,
    MUL,
    Gate,
    LayeredCircuit,
    f2_circuit,
    inner_product_circuit,
    num_vars,
    sum_circuit,
)
from repro.gkr.mle import (
    eq_eval,
    line_points,
    mle_eval,
    pad_to_power_of_two,
    restrict_to_line,
)
from repro.gkr.protocol import (
    GKRProver,
    StreamingGKRVerifier,
    gkr_protocol,
    run_gkr,
)
from repro.gkr.sumcheck import boolean_sum, round_message
from repro.streams.model import Stream

F = DEFAULT_FIELD


# -- circuits ------------------------------------------------------------------


def test_gate_validation():
    with pytest.raises(ValueError):
        Gate("xor", 0, 1)


def test_circuit_wire_validation():
    with pytest.raises(ValueError):
        LayeredCircuit([[Gate(ADD, 0, 2)]], input_size=2)


def test_circuit_shape_validation():
    with pytest.raises(ValueError):
        LayeredCircuit([[Gate(ADD, 0, 1)]], input_size=3)
    with pytest.raises(ValueError):
        LayeredCircuit([], input_size=2)


def test_f2_circuit_evaluates():
    c = f2_circuit(8)
    a = [3, 1, 4, 1, 5, 9, 2, 6]
    assert c.output(F, a) == [sum(x * x for x in a) % F.p]
    assert c.depth == 4  # square layer + 3 sum layers


def test_sum_circuit_evaluates():
    c = sum_circuit(16)
    a = list(range(16))
    assert c.output(F, a) == [sum(a)]


def test_inner_product_circuit_evaluates():
    c = inner_product_circuit(8)
    vec = [1, 2, 3, 4, 10, 20, 30, 40]
    assert c.output(F, vec) == [10 + 40 + 90 + 160]


def test_num_vars():
    assert num_vars(1) == 0
    assert num_vars(8) == 3
    with pytest.raises(ValueError):
        num_vars(6)


# -- MLE helpers ---------------------------------------------------------------


def test_mle_agrees_on_hypercube():
    values = [7, 1, 9, 4]
    for i, v in enumerate(values):
        point = [(i >> j) & 1 for j in range(2)]
        assert mle_eval(F, values, point) == v


def test_mle_matches_streaming_lde():
    from repro.lde.streaming import StreamingLDE

    rng = random.Random(1)
    point = F.rand_vector(rng, 4)
    values = [rng.randrange(100) for _ in range(16)]
    assert mle_eval(F, values, point) == StreamingLDE.direct_evaluate(
        F, values, 2, point
    )


def test_mle_dimension_check():
    with pytest.raises(ValueError):
        mle_eval(F, [1, 2, 3, 4], [1])


def test_eq_eval_is_indicator():
    for idx in range(8):
        for other in range(8):
            point = [(other >> j) & 1 for j in range(3)]
            assert eq_eval(F, idx, 3, point) == (1 if idx == other else 0)


def test_line_and_restriction():
    rng = random.Random(2)
    values = [rng.randrange(50) for _ in range(8)]
    start = F.rand_vector(rng, 3)
    end = F.rand_vector(rng, 3)
    q = restrict_to_line(F, values, start, end, 4)
    assert q[0] == mle_eval(F, values, start)
    assert q[1] == mle_eval(F, values, end)
    # The degree-3 interpolant matches the MLE anywhere on the line.
    from repro.field.polynomial import evaluate_from_evals

    t = F.rand(rng)
    assert evaluate_from_evals(F, q, t) == mle_eval(
        F, values, line_points(F, start, end, t)
    )


def test_pad_to_power_of_two():
    assert pad_to_power_of_two([1, 2, 3]) == [1, 2, 3, 0]
    assert pad_to_power_of_two([]) == [0]


# -- generic sum-check ------------------------------------------------------------


def test_sumcheck_messages_consistent():
    rng = random.Random(3)
    table = [rng.randrange(20) for _ in range(8)]

    def f(pt):
        return mle_eval(F, table, pt)

    total = boolean_sum(F, f, 3)
    assert total == sum(table) % F.p
    msg = round_message(F, f, 3, [], degree=1)
    assert (msg[0] + msg[1]) % F.p == total


# -- the protocol -------------------------------------------------------------------


def run_on(circuit, stream, seed=0, channel=None):
    verifier = StreamingGKRVerifier(F, circuit, rng=random.Random(seed))
    prover = GKRProver(F, circuit)
    for i, delta in stream.updates():
        verifier.process(i, delta)
        prover.process(i, delta)
    return run_gkr(prover, verifier, channel)


@pytest.mark.parametrize("size", [4, 8, 16])
def test_gkr_f2_completeness(size):
    rng = random.Random(size)
    stream = Stream(size, [(rng.randrange(size), rng.randint(-4, 6))
                           for _ in range(2 * size)])
    result = run_on(f2_circuit(size), stream, seed=size + 1)
    assert result.accepted
    assert result.value == [stream.self_join_size() % F.p]


def test_gkr_sum_completeness():
    stream = Stream(8, [(1, 5), (6, 7)])
    result = run_on(sum_circuit(8), stream)
    assert result.accepted
    assert result.value == [12]


def test_gkr_inner_product_completeness():
    # First half = a, second half = b.
    stream = Stream(8, [(0, 2), (1, 3), (4, 10), (5, 20)])
    result = run_on(inner_product_circuit(8), stream)
    assert result.accepted
    assert result.value == [2 * 10 + 3 * 20]


def test_gkr_lying_output_rejected():
    circuit = f2_circuit(8)
    stream = Stream(8, [(0, 3)])
    channel = Channel(
        tamper=lambda m: [m.payload[0] + 1]
        if m.label == "outputs"
        else m.payload
    )
    result = run_on(circuit, stream, channel=channel)
    assert not result.accepted


def test_gkr_tampered_sumcheck_rejected():
    circuit = f2_circuit(8)
    stream = Stream(8, [(0, 3), (5, 2)])
    channel = Channel(tamper=flip_word(round_index=3, position=1))
    result = run_on(circuit, stream, channel=channel)
    assert not result.accepted


def test_gkr_tampered_line_restriction_rejected():
    circuit = f2_circuit(8)
    stream = Stream(8, [(2, 4)])
    channel = Channel(
        tamper=lambda m: [v + 1 for v in m.payload]
        if m.label.endswith("-line")
        else m.payload
    )
    result = run_on(circuit, stream, channel=channel)
    assert not result.accepted


def test_gkr_lying_input_claims_rejected():
    """Claims about the input MLE are checked against the streamed values."""
    circuit = sum_circuit(8)
    stream = Stream(8, [(1, 9)])
    last_layer = circuit.depth - 1
    channel = Channel(
        tamper=lambda m: [m.payload[0] + 1, m.payload[1]]
        if m.label == "layer%d-claims" % last_layer
        else m.payload
    )
    result = run_on(circuit, stream, channel=channel)
    assert not result.accepted


def test_gkr_cost_shape_log_squared():
    """GKR costs ~d·log u rounds vs log u for the specialised protocol —
    the quadratic-improvement claim after Theorem 4."""
    from repro.core.f2 import F2Prover, F2Verifier, run_f2

    size = 16
    stream = Stream(size, [(3, 2), (9, 5)])
    gkr_result = run_on(f2_circuit(size), stream, seed=7)
    verifier = F2Verifier(F, size, rng=random.Random(8))
    prover = F2Prover(F, size)
    verifier.process_stream(stream.updates())
    prover.process_stream(stream.updates())
    f2_result = run_f2(prover, verifier)
    assert gkr_result.accepted and f2_result.accepted
    assert gkr_result.value == [f2_result.value]
    assert gkr_result.transcript.rounds > 2 * f2_result.transcript.rounds
    assert gkr_result.transcript.total_words > f2_result.transcript.total_words


def test_gkr_input_points_predrawn():
    """The streaming hook: input evaluation points are known pre-stream."""
    circuit = f2_circuit(8)
    verifier = StreamingGKRVerifier(F, circuit, rng=random.Random(9))
    rx, ry = verifier.coins.input_points()
    assert verifier.lde_x.point == rx
    assert verifier.lde_y.point == ry


def test_gkr_prover_set_inputs():
    prover = GKRProver(F, sum_circuit(4))
    prover.set_inputs([1, 2, 3, 4])
    assert prover.inputs == [1, 2, 3, 4]
    with pytest.raises(ValueError):
        prover.set_inputs([1])


def test_gkr_end_to_end_helper():
    stream = Stream(4, [(0, 1), (3, 2)])
    result = gkr_protocol(f2_circuit(4), stream, F, rng=random.Random(10))
    assert result.accepted
    assert result.value == [5]
