"""Observability primitives: metrics registry, tracer, structured logs.

These are the unit-level guarantees the end-to-end suites
(``test_obs_service.py`` / ``test_obs_cluster.py``) build on: exact
histogram accounting, quantiles that agree with the benchmark
percentile, span trees that reconstruct offline, log lines that carry
trace correlation — and a source lint holding the line the structured
logger exists to hold (no bare ``print(`` or stdlib root logger in
``src/`` outside the CLI entry points).
"""

from __future__ import annotations

import ast
import io
import json
import os
import random

from repro import obs
from repro.obs import logging as obs_logging
from repro.service.loadgen import _percentile


def _reset_logging():
    """Fully detach the structured-log sink (configure_logging with no
    sink is deliberately node-only, so tests reset the state directly)."""
    with obs_logging._state.lock:
        obs_logging._state.sink = None
        obs_logging._state.own_sink = False
        obs_logging._state.node = ""
        obs_logging._state.loaded = True


# -- metrics -------------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    reg = obs.MetricsRegistry(enabled=True)
    reg.counter("c").inc()
    reg.counter("c").inc(4)
    reg.gauge("g").set(7)
    reg.gauge("g").dec(2)
    for v in (1.0, 3.0, 2.0):
        reg.histogram("h").observe(v)
    snap = reg.snapshot()
    assert snap["counters"]["c"] == 5
    assert snap["gauges"]["g"] == 5
    hist = snap["histograms"]["h"]
    assert hist["count"] == 3
    assert hist["sum"] == 6.0
    assert hist["min"] == 1.0 and hist["max"] == 3.0


def test_labelled_series_are_distinct_and_get_or_create():
    reg = obs.MetricsRegistry(enabled=True)
    reg.counter("ops", kind="a").inc()
    reg.counter("ops", kind="b").inc(2)
    # Same (name, labels) returns the same instrument.
    assert reg.counter("ops", kind="a") is reg.counter("ops", kind="a")
    snap = reg.snapshot()
    assert snap["counters"]['ops{kind="a"}'] == 1
    assert snap["counters"]['ops{kind="b"}'] == 2


def test_histogram_quantiles_match_loadgen_percentile():
    """Metric p50/p95/p99 and benchmark percentiles must be the *same*
    number on the same samples — one definition of tail latency."""
    rng = random.Random(7)
    samples = [rng.random() * 100 for _ in range(997)]
    reg = obs.MetricsRegistry(enabled=True)
    h = reg.histogram("lat")
    for s in samples:
        h.observe(s)
    for q in (0.5, 0.9, 0.95, 0.99):
        assert h.quantile(q) == _percentile(samples, q)


def test_histogram_count_and_sum_stay_exact_past_sample_cap():
    reg = obs.MetricsRegistry(enabled=True)
    h = reg.histogram("big")
    n = obs.metrics.DEFAULT_MAX_SAMPLES + 50
    for i in range(n):
        h.observe(1.0)
    summary = h.summary()
    assert summary["count"] == n
    assert summary["sum"] == float(n)
    assert len(h.samples()) == obs.metrics.DEFAULT_MAX_SAMPLES


def test_histogram_retention_is_windowed_past_the_cap():
    """Past max_samples the histogram keeps the *latest* window, oldest
    first — a long-run p95/p99 reflects current latencies, not whatever
    the first N observations at startup happened to be (the old first-N
    retention silently dropped every later sample)."""
    h = obs.metrics.Histogram("w", (), True, max_samples=8)
    for i in range(20):
        h.observe(float(i))
    assert h.samples() == [float(i) for i in range(12, 20)]
    assert h.count == 20
    assert h.sum == float(sum(range(20)))
    # Quantiles are nearest-rank over the retained window — and agree
    # with the loadgen percentile on that same window.
    window = [float(i) for i in range(12, 20)]
    for q in (0.5, 0.9, 0.95, 0.99):
        assert h.quantile(q) == _percentile(window, q)
    # A regime change after the cap is visible (first-N retention froze
    # the distribution at startup and would still report ~startup p99).
    for _ in range(8):
        h.observe(1000.0)
    assert h.quantile(0.99) == 1000.0
    assert h.samples() == [1000.0] * 8


def test_histogram_windowed_retention_fills_ring_in_order():
    h = obs.metrics.Histogram("w2", (), True, max_samples=4)
    for i in range(6):  # partial second lap of the ring
        h.observe(float(i))
    assert h.samples() == [2.0, 3.0, 4.0, 5.0]
    # Below the cap retention is exact, so quantiles match loadgen on
    # the full sample set — the sub-cap agreement contract is unchanged.
    fresh = obs.metrics.Histogram("w3", (), True, max_samples=100)
    values = [float(v) for v in (5, 1, 9, 2, 2, 7)]
    for v in values:
        fresh.observe(v)
    for q in (0.5, 0.9, 0.95, 0.99):
        assert fresh.quantile(q) == _percentile(values, q)


def test_windowed_histogram_rotation_never_touches_transcripts():
    """Drive a real batched sum-check with the engine's round histogram
    capped at a 2-sample window (so the ring rotates every round) and
    assert the transcript is byte-identical to a metrics-off run — the
    retention policy is invisible to the protocol."""
    import random as _random

    from repro.comm.channel import Channel
    from repro.core.multiquery import (
        BatchedSumcheckEngine,
        BatchedSumcheckVerifier,
        batch_f2,
        batch_range_sum,
        run_batched_sumcheck,
    )
    from repro.field.modular import DEFAULT_FIELD as F

    u = 64
    updates = [(i % u, 1 + i % 3) for i in range(40)]
    point = F.rand_vector(_random.Random(3), 6)

    def run(reg):
        old = obs.set_registry(reg)
        try:
            engine = BatchedSumcheckEngine(F, u)
            verifier = BatchedSumcheckVerifier(F, u, point=point)
            for i, delta in updates:
                engine.process(i, delta)
                verifier.process_a(i, delta)
            ch = Channel()
            results = run_batched_sumcheck(
                engine, verifier, [batch_range_sum(3, 40), batch_f2()], ch
            )
            assert all(r.accepted for r in results)
            return ch.transcript.messages
        finally:
            obs.set_registry(old)

    reg = obs.MetricsRegistry(enabled=True)
    capped = reg._get(
        "histogram", obs.metrics.Histogram, "repro_sumcheck_round_seconds",
        {}, max_samples=2,
    )
    on = run(reg)
    assert capped.count == 6  # one observation per round, d = 6
    assert len(capped.samples()) == 2  # ...retained through the window
    off = run(obs.MetricsRegistry(enabled=False))
    assert on == off


def test_disabled_registry_is_a_cheap_noop():
    reg = obs.MetricsRegistry(enabled=False)
    reg.counter("c").inc()
    reg.histogram("h").observe(1.0)
    reg.gauge("g").set(3)
    # Instruments still hand out, but nothing records.
    snap = reg.snapshot()
    assert snap["counters"]["c"] == 0
    assert snap["gauges"]["g"] == 0.0
    assert snap["histograms"]["h"]["count"] == 0


def test_metrics_env_var_disables(monkeypatch):
    monkeypatch.setenv(obs.METRICS_ENV_VAR, "0")
    assert not obs.metrics_enabled()
    monkeypatch.setenv(obs.METRICS_ENV_VAR, "off")
    assert not obs.metrics_enabled()
    monkeypatch.delenv(obs.METRICS_ENV_VAR, raising=False)
    assert obs.metrics_enabled()


def test_global_registry_swap_and_convenience_helpers():
    reg = obs.MetricsRegistry(enabled=True)
    old = obs.set_registry(reg)
    try:
        obs.counter("swap_test").inc()
        obs.histogram("swap_hist", kind="x").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"]["swap_test"] == 1
        assert snap["histograms"]['swap_hist{kind="x"}']["count"] == 1
    finally:
        obs.set_registry(old)


def test_to_text_is_prometheus_parseable():
    reg = obs.MetricsRegistry(enabled=True)
    reg.counter("req_total", code="200").inc(3)
    reg.gauge("inflight").set(2)
    reg.histogram("lat_seconds").observe(0.25)
    text = reg.to_text()
    lines = text.splitlines()
    assert '# TYPE req_total counter' in lines
    assert 'req_total{code="200"} 3' in lines
    assert "inflight 2" in lines
    # Histogram summary exposes quantiles and _count/_sum.
    assert any(l.startswith('lat_seconds{quantile="0.5"}') for l in lines)
    assert "lat_seconds_count 1" in lines
    # Every non-comment line is "name_or_labels value".
    for line in lines:
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(None, 1)
        float(value)
        assert name


# -- tracing -------------------------------------------------------------------


def _spans(sink: io.StringIO):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


def test_span_tree_reconstructs_with_parents_and_fields():
    sink = io.StringIO()
    tracer = obs.Tracer(sink=sink, node="n-test", enabled=True)
    with tracer.span("root_op", kind="outer") as root:
        with tracer.span("child_op"):
            pass
        root.set(extra=1)
    spans = {s["name"]: s for s in _spans(sink)}
    assert set(spans) == {"root_op", "child_op"}
    root, child = spans["root_op"], spans["child_op"]
    assert root["parent"] is None
    assert child["parent"] == root["span"]
    assert child["trace"] == root["trace"]
    assert root["kind"] == "outer" and root["extra"] == 1
    assert all(s["node"] == "n-test" for s in spans.values())
    assert all(s["dur"] >= 0 for s in spans.values())


def test_root_span_starts_a_fresh_trace_even_under_an_open_span():
    sink = io.StringIO()
    tracer = obs.Tracer(sink=sink, enabled=True)
    with tracer.span("session_a"):
        with tracer.span("session_b", root=True):
            pass
    spans = {s["name"]: s for s in _spans(sink)}
    assert spans["session_b"]["parent"] is None
    assert spans["session_b"]["trace"] != spans["session_a"]["trace"]


def test_explicit_parent_context_crosses_process_boundaries():
    """A received (trace id, span id) pair parents a local span — the
    wire-propagation contract."""
    sink = io.StringIO()
    tracer = obs.Tracer(sink=sink, enabled=True)
    trace_id, span_id = obs.new_id(), obs.new_id()
    ctx = obs.TraceContext(trace_id, span_id)
    with tracer.span("server_side", parent=ctx):
        pass
    (span,) = _spans(sink)
    assert span["trace"] == "%016x" % trace_id
    assert span["parent"] == "%016x" % span_id


def test_disabled_tracer_returns_shared_noop():
    tracer = obs.Tracer(enabled=False)
    span = tracer.span("anything")
    assert span is obs.NOOP_SPAN
    with span:
        span.set(x=1)
    span.end()  # idempotent, no sink, no error


def test_new_id_is_nonzero_64bit():
    for _ in range(100):
        value = obs.new_id()
        assert 0 < value < 1 << 64


# -- structured logging --------------------------------------------------------


def test_log_lines_are_json_with_trace_correlation():
    sink = io.StringIO()
    obs.configure_logging(sink=sink, node="n-log")
    try:
        tracer = obs.Tracer(sink=io.StringIO(), enabled=True)
        logger = obs.get_logger("test.subsystem")
        logger.info("plain.event", a=1)
        with tracer.span("op") as span:
            logger.warning("traced.event", b="x")
        lines = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert lines[0]["event"] == "plain.event"
        assert lines[0]["level"] == "info"
        assert lines[0]["logger"] == "test.subsystem"
        assert lines[0]["node"] == "n-log"
        assert lines[0]["a"] == 1
        assert "trace" not in lines[0]
        assert lines[1]["event"] == "traced.event"
        assert lines[1]["trace"] == "%016x" % span.ctx.trace_id
        assert lines[1]["span"] == "%016x" % span.ctx.span_id
    finally:
        _reset_logging()


def test_configure_logging_node_only_keeps_existing_sink():
    sink = io.StringIO()
    obs.configure_logging(sink=sink, node="before")
    try:
        obs.configure_logging(node="after")
        obs.get_logger("test.keep").info("still.here")
        (line,) = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert line["node"] == "after"
    finally:
        _reset_logging()


def test_logging_disabled_by_default_is_noop(monkeypatch):
    monkeypatch.delenv(obs.LOG_ENV_VAR, raising=False)
    _reset_logging()
    logger = obs.get_logger("test.off")
    assert not logger.enabled
    logger.info("dropped.event")  # nowhere to go, must not raise


# -- source lint: no bare print / root logger in src/ --------------------------


#: CLI entry points announce addresses on stdout by design.
_PRINT_ALLOWED = {
    os.path.join("repro", "service", "__main__.py"),
    os.path.join("repro", "experiments", "__main__.py"),
}


def _src_files():
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(here, "src")
    for dirpath, _dirs, files in os.walk(src):
        for fname in files:
            if fname.endswith(".py"):
                yield os.path.join(dirpath, fname), src


def test_src_has_no_bare_print_outside_cli_entry_points():
    offenders = []
    for path, src in _src_files():
        rel = os.path.relpath(path, src)
        if rel in _PRINT_ALLOWED:
            continue
        with open(path, "r", encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=path)
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                offenders.append("%s:%d" % (rel, node.lineno))
    assert not offenders, (
        "bare print() in src/ — use repro.obs.get_logger: %s" % offenders
    )


def test_src_never_imports_the_stdlib_root_logger():
    offenders = []
    for path, src in _src_files():
        rel = os.path.relpath(path, src)
        with open(path, "r", encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=path)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any(a.name.split(".")[0] == "logging"
                       for a in node.names):
                    offenders.append("%s:%d" % (rel, node.lineno))
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module \
                        and node.module.split(".")[0] == "logging":
                    offenders.append("%s:%d" % (rel, node.lineno))
    assert not offenders, (
        "stdlib logging import in src/ — use repro.obs structured "
        "logging: %s" % offenders
    )


def test_nearest_rank_edge_cases():
    assert obs.nearest_rank([], 0.99) == 0.0
    assert obs.nearest_rank([5.0], 0.5) == 5.0
    assert obs.nearest_rank([1.0, 2.0], 0.99) == 2.0
