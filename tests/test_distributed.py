"""Tests for the Map-Reduce-style distributed prover (Section 7)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.f2 import F2Prover, F2Verifier, run_f2
from repro.distributed.sharded import DistributedF2Prover
from repro.field.modular import DEFAULT_FIELD
from repro.streams.generators import uniform_frequency_stream
from repro.streams.model import Stream

F = DEFAULT_FIELD

updates_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63),
              st.integers(min_value=-9, max_value=9)),
    max_size=30,
)


@given(updates_strategy, st.sampled_from([1, 2, 4, 8]))
def test_messages_identical_to_centralised(updates, workers):
    """The paper's parallelisation claim: each round message is a sum of
    per-shard inner products, so map-reduce changes nothing on the wire."""
    central = F2Prover(F, 64)
    distributed = DistributedF2Prover(F, 64, num_workers=workers)
    for i, d in updates:
        central.process(i, d)
        distributed.process(i, d)
    central.begin_proof()
    distributed.begin_proof()
    rng = random.Random(1)
    for j in range(central.d):
        assert central.round_message() == distributed.round_message()
        if j < central.d - 1:
            r = F.rand(rng)
            central.receive_challenge(r)
            distributed.receive_challenge(r)


@given(updates_strategy)
def test_accepted_by_standard_verifier(updates):
    stream = Stream(64, updates)
    verifier = F2Verifier(F, 64, rng=random.Random(2))
    prover = DistributedF2Prover(F, 64, num_workers=4)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)
    result = run_f2(prover, verifier)
    assert result.accepted
    assert result.value == stream.self_join_size() % F.p


def test_end_to_end_medium_scale():
    stream = uniform_frequency_stream(1 << 10, max_frequency=20,
                                      rng=random.Random(3))
    verifier = F2Verifier(F, 1 << 10, rng=random.Random(4))
    prover = DistributedF2Prover(F, 1 << 10, num_workers=8)
    for i, d in stream.updates():
        verifier.process(i, d)
        prover.process(i, d)
    result = run_f2(prover, verifier)
    assert result.accepted
    assert result.value == stream.self_join_size() % F.p


def test_sharding_balance():
    prover = DistributedF2Prover(F, 1 << 8, num_workers=4)
    assert prover.max_worker_keys == 64
    for worker in prover.workers:
        assert worker.shard_size == 64


def test_keys_routed_to_correct_shard():
    prover = DistributedF2Prover(F, 16, num_workers=4)
    prover.process(0, 1)
    prover.process(5, 2)
    prover.process(15, 3)
    assert prover.workers[0].freq[0] == 1
    assert prover.workers[1].freq[1] == 2  # key 5 = shard 1, offset 1
    assert prover.workers[3].freq[3] == 3


def test_true_answer():
    prover = DistributedF2Prover(F, 16, num_workers=2)
    prover.process_stream([(1, 3), (9, 4)])
    assert prover.true_answer() == 25


def test_worker_count_validation():
    with pytest.raises(ValueError):
        DistributedF2Prover(F, 64, num_workers=3)
    with pytest.raises(ValueError):
        DistributedF2Prover(F, 64, num_workers=0)
    with pytest.raises(ValueError):
        DistributedF2Prover(F, 8, num_workers=8)  # shards of one entry


def test_universe_check():
    prover = DistributedF2Prover(F, 16, num_workers=2)
    with pytest.raises(ValueError):
        prover.process(16, 1)


def test_coordinator_takeover_rounds():
    """After log(size/workers) folds the shards are single values and the
    coordinator runs the remaining log(workers) rounds."""
    prover = DistributedF2Prover(F, 64, num_workers=4)
    prover.process_stream([(i, 1) for i in range(64)])
    prover.begin_proof()
    rng = random.Random(5)
    for j in range(prover.d - 1):
        prover.round_message()
        prover.receive_challenge(F.rand(rng))
        if j + 1 < prover._shard_bits:
            assert prover._coordinator_table is None
        else:
            assert prover._coordinator_table is not None
    assert len(prover._coordinator_table) == 2


# -- shard-count validation + backend plumbing --------------------------------


def test_worker_count_error_messages_are_clear():
    with pytest.raises(ValueError, match="power of two"):
        DistributedF2Prover(F, 64, num_workers=6)
    with pytest.raises(ValueError, match="at least two entries"):
        DistributedF2Prover(F, 16, num_workers=16)


def test_single_worker_degenerates_to_central():
    from repro.core.f2 import F2Prover

    central = F2Prover(F, 32)
    solo = DistributedF2Prover(F, 32, num_workers=1)
    for i, d in [(0, 3), (7, -2), (31, 5)]:
        central.process(i, d)
        solo.process(i, d)
    central.begin_proof()
    solo.begin_proof()
    rng = random.Random(40)
    for j in range(central.d):
        assert list(central.round_message()) == list(solo.round_message())
        if j < central.d - 1:
            r = F.rand(rng)
            central.receive_challenge(r)
            solo.receive_challenge(r)


def test_partial_message_requires_begin_proof():
    prover = DistributedF2Prover(F, 16, num_workers=2)
    with pytest.raises(RuntimeError):
        prover.workers[0].partial_message()
    with pytest.raises(RuntimeError):
        prover.workers[0].fold(1)
