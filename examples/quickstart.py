"""Quickstart: verify a self-join size computed by an untrusted prover.

The data owner (verifier) watches a stream of items using O(log u) words;
the service provider (prover) stores everything.  Afterwards they run the
Section 3.1 sum-check protocol: the verifier learns the exact F2 with
soundness error ~4·log(u)/2^61, and catches any attempt to cheat.

Run:  python examples/quickstart.py
"""

import random

from repro import DEFAULT_FIELD, F2Prover, F2Verifier, Stream, run_f2
from repro.adversary import ModifiedStreamF2Prover


def main():
    u = 1 << 10  # universe size (keys are in [0, u))
    rng = random.Random(2011)

    # The stream both parties observe: 5000 item occurrences.
    stream = Stream.from_items(
        u, [rng.randrange(u) for _ in range(5000)]
    )

    # The verifier draws its secret point *before* the stream and keeps
    # only O(log u) words while streaming.
    verifier = F2Verifier(DEFAULT_FIELD, u, rng=rng)
    prover = F2Prover(DEFAULT_FIELD, u)
    for key, delta in stream.updates():
        verifier.process(key, delta)
        prover.process(key, delta)

    result = run_f2(prover, verifier)
    assert result.accepted
    print("verified self-join size :", result.value)
    print("ground truth            :", stream.self_join_size())
    print("verifier space (words)  :", result.verifier_space_words)
    print("communication           :", result.transcript.summary())

    # A cheating prover computes a perfect proof -- for the wrong data.
    cheater = ModifiedStreamF2Prover(DEFAULT_FIELD, u, corrupt_key=7)
    cheater.process_stream(stream.updates())
    fresh_verifier = F2Verifier(DEFAULT_FIELD, u, rng=rng)
    fresh_verifier.process_stream(stream.updates())
    cheat_result = run_f2(cheater, fresh_verifier)
    assert not cheat_result.accepted
    print("cheating prover         : rejected (%s)" % cheat_result.reason)


if __name__ == "__main__":
    main()
