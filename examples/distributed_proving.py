"""Map-Reduce-style distributed proving (Section 7, future work).

"The prover's message in each round can be written as the inner product
of the input data with a function defined by the values of r_j revealed
so far.  Thus, these protocols easily parallelize, and fit into
Map-Reduce settings very naturally; it remains to demonstrate this
empirically."  This example is that demonstration: a cluster of shard
workers produces byte-identical messages to the centralised prover, and
the unmodified verifier accepts them.

Run:  python examples/distributed_proving.py
"""

import random

from repro import DEFAULT_FIELD, F2Prover, F2Verifier, run_f2
from repro.distributed import DistributedF2Prover
from repro.streams.generators import uniform_frequency_stream


def main():
    u = 1 << 12
    stream = uniform_frequency_stream(u, max_frequency=100,
                                      rng=random.Random(77))
    print("stream over u = %d, total mass %d"
          % (u, sum(stream.frequency_vector())))

    # The "cluster": 8 shard workers plus a coordinator.
    cluster = DistributedF2Prover(DEFAULT_FIELD, u, num_workers=8)
    central = F2Prover(DEFAULT_FIELD, u)
    verifier = F2Verifier(DEFAULT_FIELD, u, rng=random.Random(1))
    for key, delta in stream.updates():
        cluster.process(key, delta)   # routed to the right worker
        central.process(key, delta)
        verifier.process(key, delta)
    print("8 workers, %d keys each" % cluster.max_worker_keys)

    # The messages are identical — the reduce step is a 3-word sum.
    cluster.begin_proof()
    central.begin_proof()
    assert cluster.round_message() == central.round_message()
    print("round-1 message from the cluster == centralised prover: True")

    # And the standard verifier accepts the cluster's proof unchanged.
    cluster.begin_proof()
    result = run_f2(cluster, verifier)
    assert result.accepted and result.value == stream.self_join_size()
    print("verified F2 from the cluster: %d  [%s]"
          % (result.value, result.transcript.summary()))


if __name__ == "__main__":
    main()
