"""Prover-as-a-service quickstart: the Section 1 scenario over real TCP.

Boots the prover service, streams a key-value workload from a thin
client verifier (O(log u) state per verifier copy), runs verified
queries of several kinds through the QueryRouter — every protocol round
crossing the wire as binary frames — prints each query's word/byte/frame
cost, demonstrates a second late-joining verifier catching up via
replay, and finishes with a small load-generation run.

Run:  python examples/service_quickstart.py
"""

import random

from repro import DEFAULT_FIELD
from repro.service import (
    ProverServer,
    ServiceClient,
    f2,
    fk,
    heavy_hitters,
    point_lookup,
    predecessor,
    range_scan,
    range_sum,
    run_load,
)
from repro.streams.generators import key_value_pairs


def main():
    server = ProverServer(DEFAULT_FIELD)
    handle = server.serve_in_thread()
    host, port = handle.address
    print("prover service listening on %s:%d" % (host, port))

    u = 1 << 14
    client = ServiceClient(host, port, DEFAULT_FIELD, u, dataset_id=1,
                           rng=random.Random(7))
    # Verifier pools are provisioned *before* the stream (Definition 1):
    # one copy is consumed per verified query; sum-check queries in one
    # query() call (here the two RANGE-SUMs and the Fk) share one copy
    # of the ("batch",) pool via the batched direct-sum rounds.
    client.provision(("tree",), 3)
    client.provision(("batch",), 1)
    client.provision(("f2",), 1)
    client.provision(("heavy-hitters", 1, 32), 1)

    pairs = key_value_pairs(u, 2000, rng=random.Random(11))
    client.send_updates([(k, v + 1) for k, v in pairs])  # DICTIONARY +1
    print("streamed %d key-value puts over the wire" % len(pairs))

    some_key, some_val = pairs[0]
    outcomes = client.query(
        point_lookup(some_key),
        range_sum(0, u // 2),
        range_sum(u // 2, u - 1),
        fk(3),          # joins the range-sums in one batched engine run
        f2(workers=4),  # worker-pool execution mode on the server
        heavy_hitters(1, 32),
        predecessor(u // 2),
        range_scan(0, 200),
    )
    print("\n%-14s %-9s %7s %7s %7s" % ("query", "verified", "words",
                                        "bytes", "frames"))
    for o in outcomes:
        assert o.result.accepted, (o.descriptor.name, o.result.reason)
        print("%-14s %-9s %7d %7d %7d" % (
            o.descriptor.name, o.result.accepted,
            o.cost.transcript_words,
            o.cost.bytes_sent + o.cost.bytes_received, o.cost.frames))
    got = outcomes[0].result.value
    print("\nget(%d) = %d  [verified; +1 encoding decodes to %d]"
          % (some_key, got, got - 1))
    assert got - 1 == some_val

    # A second verifier joins late and replays the shared server pass.
    late = ServiceClient(host, port, DEFAULT_FIELD, u, dataset_id=1,
                         rng=random.Random(8))
    late.provision(("f2",), 1)
    replayed = late.replay_missed()
    check = late.query(f2())[0]
    assert check.result.accepted
    print("late verifier replayed %d updates and re-verified F2 = %d"
          % (replayed, check.result.value))
    late.close()
    client.close()

    report = run_load(host, port, DEFAULT_FIELD, 1 << 10, sessions=6,
                      updates_per_session=400, concurrency=3, seed=3,
                      dataset_base=100)
    assert not report.failures
    print("\nload: %d sessions -> %.1f sessions/s, %.0f updates/s, "
          "%.1f verified queries/s"
          % (report.sessions, report.sessions_per_second,
             report.updates_per_second, report.queries_per_second))
    handle.stop()


if __name__ == "__main__":
    main()
