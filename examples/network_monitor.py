"""Verified network monitoring over outsourced flow records.

A router exports per-source traffic counters to an untrusted aggregator;
the operator keeps O(log u) words and later verifies (Sections 3 & 6):

* self-join size F2 (a skew statistic used for join-size estimation),
* the number of distinct active sources (F0),
* the heaviest users (φ-heavy hitters) -- "the heaviest users or
  destinations" motivation from the paper's Section 1.1.

Run:  python examples/network_monitor.py
"""

import random

from repro import DEFAULT_FIELD
from repro.core import (
    f0_protocol,
    heavy_hitters_protocol,
    self_join_size_protocol,
)
from repro.streams.generators import zipf_stream


def main():
    u = 1 << 9          # source-address space (scaled down)
    packets = 12_000    # packet arrivals
    traffic = zipf_stream(u, packets, skew=1.2, rng=random.Random(99))
    print("observed %d packets from a universe of %d sources"
          % (packets, u))

    f2 = self_join_size_protocol(traffic, DEFAULT_FIELD,
                                 rng=random.Random(1))
    assert f2.accepted and f2.value == traffic.self_join_size()
    print("F2 (skew statistic)   : %d  [verified, %s]"
          % (f2.value, f2.transcript.summary()))

    f0 = f0_protocol(traffic, DEFAULT_FIELD, rng=random.Random(2))
    assert f0.accepted and f0.value == traffic.distinct_count()
    print("distinct sources (F0) : %d  [verified]" % f0.value)

    phi = 0.02
    hh = heavy_hitters_protocol(traffic, phi, DEFAULT_FIELD,
                                rng=random.Random(3))
    assert hh.accepted and hh.value == traffic.heavy_hitters(phi)
    print("heavy hitters (>%.0f%% of traffic):" % (phi * 100))
    for source, count in sorted(hh.value.items(), key=lambda kv: -kv[1]):
        print("   source %4d : %5d packets  [verified]" % (source, count))
    print("heavy-hitter proof    : %d words over %d rounds"
          % (hh.transcript.total_words, hh.transcript.rounds))


if __name__ == "__main__":
    main()
