"""Delegating a general circuit computation (Theorem 3 / Appendix A).

Beyond the specialised query protocols, the GKR construction lets the
streaming verifier delegate *any* layered arithmetic circuit.  Here the
prover evaluates an F2 circuit and an inner-product circuit; the verifier
streams the inputs (two pre-drawn LDE points) and checks the whole
computation layer by layer.  Cost is (log² u, log² u) — the comparison
point against which the paper's (log u, log u) F2 protocol is a quadratic
improvement.

Run:  python examples/delegated_circuits.py
"""

import random

from repro import DEFAULT_FIELD
from repro.core.f2 import self_join_size_protocol
from repro.gkr import (
    GKRProver,
    StreamingGKRVerifier,
    f2_circuit,
    inner_product_circuit,
    run_gkr,
)
from repro.streams.model import Stream


def delegate(circuit, stream, seed):
    verifier = StreamingGKRVerifier(DEFAULT_FIELD, circuit,
                                    rng=random.Random(seed))
    prover = GKRProver(DEFAULT_FIELD, circuit)
    for key, delta in stream.updates():
        verifier.process(key, delta)
        prover.process(key, delta)
    return run_gkr(prover, verifier)


def main():
    u = 16
    rng = random.Random(123)
    stream = Stream(u, [(rng.randrange(u), rng.randint(1, 9))
                        for _ in range(50)])

    result = delegate(f2_circuit(u), stream, seed=1)
    assert result.accepted
    assert result.value == [stream.self_join_size() % DEFAULT_FIELD.p]
    print("GKR-delegated F2       : %d  [verified, %s]"
          % (result.value[0], result.transcript.summary()))

    specialised = self_join_size_protocol(stream, DEFAULT_FIELD,
                                          rng=random.Random(2))
    assert specialised.accepted
    print("specialised F2 protocol: %d  [verified, %s]"
          % (specialised.value, specialised.transcript.summary()))
    print("   -> the specialised protocol needs %.1fx fewer words"
          % (result.transcript.total_words
             / specialised.transcript.total_words))

    # Join of two vectors packed into one input layer.
    join_stream = Stream(u, [(0, 2), (1, 3), (2, 5),
                             (8, 10), (9, 20), (10, 30)])
    join = delegate(inner_product_circuit(u), join_stream, seed=3)
    assert join.accepted
    print("GKR-delegated join size: %d  [verified]" % join.value[0])


if __name__ == "__main__":
    main()
