"""The paper's motivating scenario (Section 1): a Dynamo-style key-value
store outsourced to an untrusted cloud.

The data owner uploads (key, value) pairs as they arrive -- it never holds
the full data set -- keeping only O(log u) words of verification state.
Later it asks the cloud for gets, predecessor lookups and range scans, and
*verifies* every answer with the SUB-VECTOR protocol family (Section 4).

Run:  python examples/cloud_kvstore.py
"""

import random

from repro import DEFAULT_FIELD, OutsourcedKVStore, ReportingProver, TreeHashVerifier
from repro.core.reporting import (
    dictionary_get,
    predecessor_query,
    range_query,
    successor_query,
)
from repro.streams.generators import key_value_pairs


def fresh_session(store, seed):
    """One verified query needs one fresh-randomness session (Section 7)."""
    verifier = TreeHashVerifier(DEFAULT_FIELD, store.u,
                                rng=random.Random(seed))
    prover = ReportingProver(DEFAULT_FIELD, store.u)
    for key, delta in store.updates():
        verifier.process(key, delta)
        prover.process(key, delta)
    return prover, verifier


def main():
    u = 1 << 12
    store = OutsourcedKVStore(u)  # the cloud
    pairs = key_value_pairs(u, 200, rng=random.Random(7))
    store.put_many(pairs)
    print("uploaded %d key-value pairs to the cloud" % len(store))

    some_key = pairs[0][0]
    prover, verifier = fresh_session(store, seed=1)
    result = dictionary_get(prover, verifier, some_key)
    assert result.accepted and result.value.value == store.get(some_key)
    print("get(%d) = %s  [verified, %d words exchanged]"
          % (some_key, result.value.value, result.transcript.total_words))

    absent = next(k for k in range(u) if store.get(k) is None)
    prover, verifier = fresh_session(store, seed=2)
    result = dictionary_get(prover, verifier, absent)
    assert result.accepted and not result.value.found
    print("get(%d) = not found  [verified]" % absent)

    q = u // 2
    prover, verifier = fresh_session(store, seed=3)
    pred = predecessor_query(prover, verifier, q)
    assert pred.accepted and pred.value == store.predecessor_key(q)
    print("predecessor(%d) = %s  [verified]" % (q, pred.value))

    prover, verifier = fresh_session(store, seed=4)
    succ = successor_query(prover, verifier, q)
    assert succ.accepted and succ.value == store.successor_key(q)
    print("successor(%d) = %s  [verified]" % (q, succ.value))

    lo, hi = u // 4, u // 2
    prover, verifier = fresh_session(store, seed=5)
    scan = range_query(prover, verifier, lo, hi)
    assert scan.accepted
    decoded = sorted((k, v - 1) for k, v in scan.value.entries)
    assert decoded == store.range_scan(lo, hi)
    print("range [%d, %d]: %d pairs  [verified, %d words]"
          % (lo, hi, len(decoded), scan.transcript.total_words))

    # A corrupted cloud: one stored value silently flips.
    prover, verifier = fresh_session(store, seed=6)
    prover.freq[some_key] += 1
    bad = dictionary_get(prover, verifier, some_key)
    assert not bad.accepted
    print("corrupted cloud         : rejected (%s)" % bad.reason)


if __name__ == "__main__":
    main()
