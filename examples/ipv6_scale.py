"""Log-scale verification over an astronomically large key space.

The paper's closing example contemplates 1TB of IPv6 addresses — a
128-bit key universe.  The verifier's costs depend on u only through
log u, and the *sparse* provers (Theorem 4/5's O(n log(u/n)) bound) depend
on the data size, not the universe.  Here we run real protocols over
u = 2^48 with a few hundred active keys: the verifier state is ~50 words
and every proof is a few hundred bytes.

Run:  python examples/ipv6_scale.py
"""

import random

from repro import DEFAULT_FIELD, F2Verifier, TreeHashVerifier, run_f2
from repro.core.sparse import SparseF2Prover, SparseSubVectorProver
from repro.core.subvector import run_subvector
from repro.streams.model import Stream


def main():
    u = 1 << 48  # a 48-bit address space; log u drives every cost
    rng = random.Random(2012)
    keys = sorted(rng.sample(range(u), 300))
    stream = Stream(u, [(k, rng.randint(1, 50)) for k in keys])
    print("universe 2^48, %d active keys, %d updates" % (len(keys),
                                                         len(stream)))

    # Exact F2 with a 49-round conversation.
    verifier = F2Verifier(DEFAULT_FIELD, u, rng=rng)
    prover = SparseF2Prover(DEFAULT_FIELD, u)
    for key, delta in stream.updates():
        verifier.process(key, delta)
        prover.process(key, delta)
    result = run_f2(prover, verifier)
    assert result.accepted and result.value == stream.self_join_size()
    print("F2 = %d  [verified]" % result.value)
    print("   verifier space : %d words (%d bytes)"
          % (result.verifier_space_words, result.verifier_space_words * 8))
    print("   communication  : %s" % result.transcript.summary())

    # A verified range scan over a trillion-key slice.
    lo, hi = keys[100], keys[199]
    tree_verifier = TreeHashVerifier(DEFAULT_FIELD, u, rng=rng)
    sub_prover = SparseSubVectorProver(DEFAULT_FIELD, u)
    for key, delta in stream.updates():
        tree_verifier.process(key, delta)
        sub_prover.process(key, delta)
    scan = run_subvector(sub_prover, tree_verifier, lo, hi)
    assert scan.accepted and scan.value.k == 100
    print("range scan over [%d, %d] (%.1e keys wide): %d entries  "
          "[verified]" % (lo, hi, float(hi - lo + 1), scan.value.k))
    print("   communication  : %s" % scan.transcript.summary())


if __name__ == "__main__":
    main()
