"""Verified analytics over an outsourced sales ledger.

RANGE-SUM (Section 3.2) answers "total revenue for product IDs in
[lo, hi]" with the range chosen *after* the data was uploaded; the batch
runner (Section 7's direct-sum observation) verifies many ranges in one
round-synchronised conversation; INNER PRODUCT verifies a join size
between two day's streams.

Run:  python examples/range_analytics.py
"""

import random

from repro import DEFAULT_FIELD
from repro.core.inner_product import inner_product_protocol
from repro.core.multiquery import run_batch_range_sum
from repro.core.range_sum import (
    RangeSumProver,
    RangeSumVerifier,
    range_sum_protocol,
)
from repro.streams.generators import paired_streams_for_join
from repro.streams.model import Stream


def main():
    u = 1 << 12
    rng = random.Random(5)

    # A ledger: (product id, revenue) with distinct ids.
    ids = rng.sample(range(u), 300)
    ledger = Stream(u, [(pid, rng.randint(1, 500)) for pid in ids])
    print("ledger: %d products over id space [0, %d)" % (len(ids), u))

    lo, hi = 1000, 2500
    result = range_sum_protocol(ledger, lo, hi, DEFAULT_FIELD,
                                rng=random.Random(1))
    assert result.accepted and result.value == ledger.range_sum(lo, hi)
    print("revenue for ids [%d, %d]: %d  [verified, %d words]"
          % (lo, hi, result.value, result.transcript.total_words))

    # A dashboard of ranges, verified in parallel with shared randomness:
    # the prover commits every round polynomial before each challenge.
    queries = [(0, 511), (512, 1023), (1024, 2047), (2048, 4095)]
    verifier = RangeSumVerifier(DEFAULT_FIELD, u, rng=random.Random(2))
    prover = RangeSumProver(DEFAULT_FIELD, u)
    for key, delta in ledger.updates():
        verifier.process(key, delta)
        prover.process_a(key, delta)
    results = run_batch_range_sum(prover, verifier, queries)
    print("dashboard (one batched conversation):")
    for (qlo, qhi), res in zip(queries, results):
        assert res.accepted and res.value == ledger.range_sum(qlo, qhi)
        print("   ids [%4d, %4d]: revenue %7d  [verified]"
              % (qlo, qhi, res.value))

    # Join size between two days of activity (INNER PRODUCT).
    day1, day2 = paired_streams_for_join(u, 400, overlap=0.5,
                                         rng=random.Random(3))
    join = inner_product_protocol(day1, day2, DEFAULT_FIELD,
                                  rng=random.Random(4))
    assert join.accepted and join.value == day1.inner_product(day2)
    print("day1 x day2 join size : %d  [verified, %s]"
          % (join.value, join.transcript.summary()))


if __name__ == "__main__":
    main()
